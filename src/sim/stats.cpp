#include "gridmutex/sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  // Chan et al. parallel combination.
  const double delta = o.mean_ - mean_;
  const std::uint64_t n = n_ + o.n_;
  const double new_mean = mean_ + delta * double(o.n_) / double(n);
  m2_ += o.m2_ + delta * delta * double(n_) * double(o.n_) / double(n);
  mean_ = new_mean;
  n_ = n;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return n_ == 0 ? 0.0 : m2_ / double(n_);
}

double OnlineStats::sample_variance() const {
  return n_ < 2 ? 0.0 : m2_ / double(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::relative_stddev() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double OnlineStats::min() const { return n_ == 0 ? 0.0 : min_; }
double OnlineStats::max() const { return n_ == 0 ? 0.0 : max_; }

Histogram::Histogram(double limit, std::size_t buckets)
    : limit_(limit), bucket_width_(limit / double(buckets)), buckets_(buckets) {
  GMX_ASSERT(limit > 0 && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < 0) x = 0;
  if (x >= limit_) {
    ++overflow_;
    return;
  }
  const auto idx = std::size_t(x / bucket_width_);
  ++buckets_[std::min(idx, buckets_.size() - 1)];
}

void Histogram::merge(const Histogram& o) {
  GMX_ASSERT_MSG(buckets_.size() == o.buckets_.size() && limit_ == o.limit_,
                 "merging incompatible histograms");
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
  overflow_ += o.overflow_;
  total_ += o.total_;
}

double Histogram::percentile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * double(total_);
  double cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cum + double(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      const double frac = (target - cum) / double(buckets_[i]);
      return (double(i) + frac) * bucket_width_;
    }
    cum = next;
  }
  return limit_;  // target falls in the overflow tail
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = overflow_;
  for (auto b : buckets_) peak = std::max(peak, b);
  if (peak == 0) peak = 1;

  std::ostringstream out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double lo = double(i) * bucket_width_;
    const auto bar = std::size_t(double(buckets_[i]) * double(width) /
                                 double(peak));
    out << "[" << lo << ", " << lo + bucket_width_ << ") "
        << std::string(bar, '#') << " " << buckets_[i] << "\n";
  }
  if (overflow_ > 0) {
    const auto bar =
        std::size_t(double(overflow_) * double(width) / double(peak));
    out << "[" << limit_ << ", inf) " << std::string(bar, '#') << " "
        << overflow_ << "\n";
  }
  return out.str();
}

}  // namespace gmx
