#include "gridmutex/sim/random.hpp"

#include <cmath>

#include "gridmutex/sim/assert.hpp"

namespace gmx {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro's all-zero state is absorbing; splitmix64 cannot produce four
  // zero outputs from any seed, but guard against it anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return double(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  GMX_ASSERT(bound > 0);
  // Lemire (2019): unbiased bounded integers without division in the
  // common case.
  std::uint64_t x = next_u64();
  __uint128_t m = __uint128_t(x) * __uint128_t(bound);
  std::uint64_t l = std::uint64_t(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next_u64();
      m = __uint128_t(x) * __uint128_t(bound);
      l = std::uint64_t(m);
    }
  }
  return std::uint64_t(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GMX_ASSERT(lo <= hi);
  const std::uint64_t span = std::uint64_t(hi - lo) + 1;
  if (span == 0) return std::int64_t(next_u64());  // full 64-bit range
  return lo + std::int64_t(next_below(span));
}

double Rng::uniform(double lo, double hi) {
  GMX_ASSERT(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  GMX_ASSERT(mean > 0);
  // Inverse CDF; 1 - u avoids log(0).
  return -mean * std::log1p(-next_double());
}

SimDuration Rng::exponential(SimDuration mean) {
  GMX_ASSERT(mean > SimDuration::ns(0));
  return SimDuration::sec_f(exponential(mean.as_sec()));
}

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the parent seed with the stream key; splitmix64 of the combination
  // decorrelates children regardless of how close the keys are.
  std::uint64_t x = seed_ ^ (0xA0761D6478BD642Full * (stream + 1));
  const std::uint64_t derived = splitmix64(x);
  return Rng(derived);
}

}  // namespace gmx
