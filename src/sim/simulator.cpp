#include "gridmutex/sim/simulator.hpp"

#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Entry e = [&] {
    if (chooser_) {
      const std::size_t n = queue_.tie_count();
      if (n > 1) {
        const std::size_t k = chooser_(n);
        GMX_ASSERT_MSG(k < n, "tie breaker chose outside the tie-set");
        return queue_.pop_nth(k);
      }
    }
    return queue_.pop();
  }();
  GMX_ASSERT(e.time >= now_);
  now_ = e.time;
  ++processed_;
  GMX_ASSERT_MSG(processed_ <= event_limit_,
                 "event limit exceeded — livelock or runaway protocol?");
  e.fn();
  if (post_event_) post_event_();
  return true;
}

void Simulator::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

bool Simulator::run_until(SimTime deadline) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() &&
         queue_.next_time() <= deadline) {
    step();
  }
  return queue_.empty();
}

std::size_t Simulator::run_steps(std::size_t n) {
  stop_requested_ = false;
  std::size_t ran = 0;
  while (ran < n && !stop_requested_ && step()) ++ran;
  return ran;
}

}  // namespace gmx
