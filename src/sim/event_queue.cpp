#include "gridmutex/sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

std::uint32_t EventQueue::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  slab_.emplace_back();
  return std::uint32_t(slab_.size() - 1);
}

void EventQueue::free_slot(std::uint32_t slot) {
  Node& n = slab_[slot];
  n.fn.reset();
  n.pending = false;
  ++n.gen;  // stale ids (fired or cancelled) can never match again
  free_.push_back(slot);
}

void EventQueue::place(std::size_t i, const HeapItem& item) {
  heap_[i] = item;
  slab_[item.slot].heap_index = std::uint32_t(i);
}

void EventQueue::sift_up(std::size_t i) {
  const HeapItem item = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(item, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, item);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapItem item = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], item)) break;
    place(i, heap_[best]);
    i = best;
  }
  place(i, item);
}

void EventQueue::heap_remove(std::size_t i) {
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    const HeapItem moved = heap_[last];
    heap_.pop_back();
    place(i, moved);
    sift_down(i);
    sift_up(i);
  } else {
    heap_.pop_back();
  }
}

bool EventQueue::cancel(EventId id) {
  const auto slot = std::uint32_t(id & 0xFFFFFFFFu);
  const auto gen = std::uint32_t(id >> 32);
  if (slot >= slab_.size()) return false;
  Node& n = slab_[slot];
  if (!n.pending || n.gen != gen) return false;  // fired, cancelled or stale
  heap_remove(n.heap_index);
  free_slot(slot);
  return true;
}

SimTime EventQueue::next_time() {
  GMX_ASSERT_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_[0].time;
}

EventQueue::Entry EventQueue::take(const HeapItem& item) {
  Node& n = slab_[item.slot];
  Entry e{item.time, make_id(item.slot, n.gen), std::move(n.fn)};
  free_slot(item.slot);
  return e;
}

EventQueue::Entry EventQueue::pop() {
  GMX_ASSERT_MSG(!heap_.empty(), "pop() on empty queue");
  const HeapItem top = heap_[0];
  heap_remove(0);
  return take(top);
}

std::size_t EventQueue::tie_count() {
  GMX_ASSERT_MSG(!heap_.empty(), "tie_count() on empty queue");
  const SimTime t = heap_[0].time;
  std::size_t n = 0;
  for (const HeapItem& h : heap_) {
    if (h.time == t) ++n;
  }
  return n;
}

EventQueue::Entry EventQueue::pop_nth(std::size_t k) {
  GMX_ASSERT_MSG(!heap_.empty(), "pop_nth() on empty queue");
  const SimTime t = heap_[0].time;
  // Select the tie-set member with the k-th smallest seq: seq order ==
  // scheduling order (pop_nth(0) == pop()).
  std::vector<std::pair<std::uint64_t, std::size_t>> ties;  // (seq, index)
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const HeapItem& h = heap_[i];
    if (h.time == t) ties.emplace_back(h.seq, i);
  }
  GMX_ASSERT_MSG(k < ties.size(), "pop_nth(): k outside the tie-set");
  std::sort(ties.begin(), ties.end());
  const std::size_t at = ties[k].second;
  const HeapItem item = heap_[at];
  heap_remove(at);
  return take(item);
}

void EventQueue::clear() {
  for (const HeapItem& h : heap_) free_slot(h.slot);
  heap_.clear();
}

}  // namespace gmx
