#include "gridmutex/sim/event_queue.hpp"

#include <algorithm>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

EventId EventQueue::push(SimTime t, Callback fn) {
  GMX_ASSERT_MSG(fn != nullptr, "cannot schedule a null callback");
  const EventId id = next_id_++;
  heap_.push_back(HeapItem{t, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) return false;
  // An id in `cancelled_` is pending-dead; an id absent from both the heap
  // and the set has already fired. Distinguishing the latter requires a
  // membership probe of the heap only when the insert "succeeds" spuriously,
  // which we avoid by checking insertion result against live heap content:
  // ids are unique, so a second cancel of the same id fails on set insert.
  if (!cancelled_.insert(id).second) return false;
  // The id may have fired already; then the tombstone is garbage. Sweep it
  // opportunistically: if nothing in the heap carries this id, erase and
  // report failure.
  const bool in_heap =
      std::any_of(heap_.begin(), heap_.end(),
                  [id](const HeapItem& h) { return h.id == id; });
  if (!in_heap) {
    cancelled_.erase(id);
    return false;
  }
  --live_;
  return true;
}

void EventQueue::drop_cancelled_top() {
  while (!heap_.empty()) {
    const EventId id = heap_.front().id;
    auto it = cancelled_.find(id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  drop_cancelled_top();
  GMX_ASSERT_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().time;
}

EventQueue::Entry EventQueue::pop() {
  drop_cancelled_top();
  GMX_ASSERT_MSG(!heap_.empty(), "pop() on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  HeapItem item = std::move(heap_.back());
  heap_.pop_back();
  --live_;
  return Entry{item.time, item.id, std::move(item.fn)};
}

std::size_t EventQueue::tie_count() {
  drop_cancelled_top();
  GMX_ASSERT_MSG(!heap_.empty(), "tie_count() on empty queue");
  const SimTime t = heap_.front().time;
  std::size_t n = 0;
  for (const HeapItem& h : heap_) {
    if (h.time == t && cancelled_.find(h.id) == cancelled_.end()) ++n;
  }
  return n;
}

EventQueue::Entry EventQueue::pop_nth(std::size_t k) {
  drop_cancelled_top();
  GMX_ASSERT_MSG(!heap_.empty(), "pop_nth() on empty queue");
  const SimTime t = heap_.front().time;
  // Select the live tie-set member with the k-th smallest id. Ids grow
  // monotonically, so id order == scheduling order (pop_nth(0) == pop()).
  std::vector<std::pair<EventId, std::size_t>> ties;  // (id, heap index)
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const HeapItem& h = heap_[i];
    if (h.time == t && cancelled_.find(h.id) == cancelled_.end())
      ties.emplace_back(h.id, i);
  }
  GMX_ASSERT_MSG(k < ties.size(), "pop_nth(): k outside the tie-set");
  std::sort(ties.begin(), ties.end());
  const std::size_t at = ties[k].second;
  if (ties[k].first == heap_.front().id) return pop();
  // Arbitrary-position removal: swap with the back and rebuild. O(n), fine
  // for model-check queue sizes.
  HeapItem item = std::move(heap_[at]);
  if (at + 1 != heap_.size()) heap_[at] = std::move(heap_.back());
  heap_.pop_back();
  std::make_heap(heap_.begin(), heap_.end(), later);
  --live_;
  return Entry{item.time, item.id, std::move(item.fn)};
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
  live_ = 0;
}

}  // namespace gmx
