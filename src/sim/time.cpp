#include "gridmutex/sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace gmx {
namespace {

std::string format_ns(std::int64_t ns) {
  char buf[64];
  const double a = std::abs(double(ns));
  if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", double(ns) / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fms", double(ns) / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fus", double(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace

SimDuration SimDuration::ms_f(double v) {
  return SimDuration::ns(std::int64_t(std::llround(v * 1e6)));
}

SimDuration SimDuration::sec_f(double v) {
  return SimDuration::ns(std::int64_t(std::llround(v * 1e9)));
}

std::string SimDuration::to_string() const { return format_ns(ns_); }

std::string SimTime::to_string() const { return format_ns(ns_); }

}  // namespace gmx
