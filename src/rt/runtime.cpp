#include "gridmutex/rt/runtime.hpp"

#include <chrono>

#include "gridmutex/sim/assert.hpp"

namespace gmx::rt {

namespace {
std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  return (std::uint64_t(a) << 32) | b;
}
}  // namespace

RtRuntime::RtRuntime(Topology topo,
                     std::shared_ptr<const LatencyModel> latency,
                     std::uint64_t seed, double time_scale)
    : topo_(std::move(topo)),
      latency_(std::move(latency)),
      scale_(time_scale),
      rng_(seed) {
  GMX_ASSERT(latency_ != nullptr);
  GMX_ASSERT(scale_ > 0);
  workers_.reserve(topo_.node_count());
  for (NodeId v = 0; v < topo_.node_count(); ++v) {
    workers_.push_back(std::make_unique<NodeWorker>());
  }
  for (NodeId v = 0; v < topo_.node_count(); ++v) {
    workers_[v]->thread = std::thread([this, v] { worker_loop(v); });
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

RtRuntime::~RtRuntime() { shutdown(); }

void RtRuntime::shutdown() {
  if (stopping_.exchange(true)) return;
  heap_cv_.notify_all();
  for (auto& w : workers_) {
    MutexLock lock(w->mu);
    w->cv.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void RtRuntime::attach(NodeId node, ProtocolId protocol, Handler handler) {
  GMX_ASSERT(node < topo_.node_count());
  GMX_ASSERT(handler != nullptr);
  MutexLock lock(handlers_mu_);
  handlers_[pair_key(node, protocol)] = std::move(handler);
}

void RtRuntime::post(NodeId node, std::function<void()> fn) {
  GMX_ASSERT(node < topo_.node_count());
  if (stopping_.load()) return;
  NodeWorker& w = *workers_[node];
  pending_work_.fetch_add(1);
  {
    MutexLock lock(w.mu);
    w.tasks.push_back(std::move(fn));
  }
  w.cv.notify_one();
}

void RtRuntime::send(Message msg) {
  GMX_ASSERT(msg.src < topo_.node_count());
  GMX_ASSERT(msg.dst < topo_.node_count());
  GMX_ASSERT_MSG(msg.src != msg.dst, "self-send");
  if (stopping_.load()) return;
  sent_.fetch_add(1);
  pending_work_.fetch_add(1);

  SimDuration d;
  {
    MutexLock lock(rng_mu_);
    d = latency_->sample(topo_, msg.src, msg.dst, rng_);
  }
  const auto delay = std::chrono::nanoseconds(
      std::int64_t(double(d.count_ns()) * scale_));
  auto due = std::chrono::steady_clock::now() + delay;

  {
    MutexLock lock(heap_mu_);
    // Per-pair FIFO: a later send never overtakes an earlier one.
    auto [it, inserted] =
        last_delivery_.try_emplace(pair_key(msg.src, msg.dst), due);
    if (!inserted) {
      if (due < it->second) due = it->second;
      it->second = due;
    }
    heap_.push(InFlight{due, seq_++, std::move(msg)});
  }
  heap_cv_.notify_one();
}

void RtRuntime::dispatcher_loop() {
  MutexLock lock(heap_mu_);
  for (;;) {
    if (stopping_.load() && heap_.empty()) return;
    if (heap_.empty()) {
      // Explicit wait loop so the guarded heap_ reads stay visible to the
      // thread-safety analysis (see thread_annotations.hpp).
      while (!stopping_.load() && heap_.empty()) heap_cv_.wait(lock.native());
      continue;
    }
    const auto due = heap_.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (now < due) {
      heap_cv_.wait_until(lock.native(), due);
      continue;
    }
    Message msg = heap_.top().msg;
    heap_.pop();
    lock.unlock();
    deliver(std::move(msg));
    lock.lock();
  }
}

void RtRuntime::deliver(Message msg) {
  // Copy the handler out of the table while holding handlers_mu_ — a
  // pointer into the map would be written concurrently if attach()
  // re-registers the (node, protocol) pair (adaptive algorithm swapping).
  // Surfaced by GMX_GUARDED_BY(handlers_mu_) on handlers_: the escaped
  // reference was exactly the access the annotation forbids.
  Handler handler;
  {
    MutexLock lock(handlers_mu_);
    const auto it = handlers_.find(pair_key(msg.dst, msg.protocol));
    GMX_ASSERT_MSG(it != handlers_.end(),
                   "rt: message for an unattached (node, protocol)");
    handler = it->second;
  }
  const NodeId dst = msg.dst;
  NodeWorker& w = *workers_[dst];
  {
    MutexLock lock(w.mu);
    w.tasks.push_back([this, h = std::move(handler), m = std::move(msg)] {
      delivered_.fetch_add(1);
      h(m);
    });
  }
  w.cv.notify_one();
  // The task inherits the in-flight pending_work_ credit taken in send();
  // worker_loop releases it when the task completes.
}

void RtRuntime::worker_loop(NodeId node) {
  NodeWorker& w = *workers_[node];
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(w.mu);
      while (!stopping_.load() && w.tasks.empty()) w.cv.wait(lock.native());
      if (w.tasks.empty()) {
        if (stopping_.load()) return;
        continue;
      }
      task = std::move(w.tasks.front());
      w.tasks.pop_front();
    }
    task();
    pending_work_.fetch_sub(1);
  }
}

bool RtRuntime::wait_quiescent(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool idle = pending_work_.load() == 0;
    if (idle) {
      MutexLock lock(heap_mu_);
      idle = heap_.empty();
    }
    if (idle) {
      // Double-check after a settle period: a task may be between queues.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      bool still = pending_work_.load() == 0;
      if (still) {
        MutexLock lock(heap_mu_);
        still = heap_.empty();
      }
      if (still) return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace gmx::rt
