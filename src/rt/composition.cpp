#include "gridmutex/rt/composition.hpp"

#include "gridmutex/sim/assert.hpp"

namespace gmx::rt {

RtComposition::RtComposition(RtRuntime& rt, Config cfg)
    : rt_(rt), cfg_(std::move(cfg)) {
  const Topology& topo = rt_.topology();
  const std::uint32_t clusters = topo.cluster_count();
  GMX_ASSERT(cfg_.initial_cluster < clusters);
  Rng root(cfg_.seed);

  std::vector<NodeId> coordinator_nodes;
  for (ClusterId c = 0; c < clusters; ++c) {
    GMX_ASSERT_MSG(topo.cluster_size(c) >= 2,
                   "each cluster needs a coordinator and >=1 app node");
    coordinator_nodes.push_back(topo.first_node_of(c));
  }
  for (ClusterId c = 0; c < clusters; ++c) {
    inter_.push_back(std::make_unique<RtMutexEndpoint>(
        rt_, cfg_.protocol_base, coordinator_nodes, int(c),
        make_algorithm(cfg_.inter_algorithm), root.fork(1000 + c)));
  }

  app_endpoint_of_node_.assign(topo.node_count(), -1);
  intra_.resize(clusters);
  for (ClusterId c = 0; c < clusters; ++c) {
    const std::vector<NodeId> members = topo.nodes_of(c);
    for (std::size_t r = 0; r < members.size(); ++r) {
      intra_[c].push_back(std::make_unique<RtMutexEndpoint>(
          rt_, cfg_.protocol_base + 1 + c, members, int(r),
          make_algorithm(cfg_.intra_algorithm),
          root.fork(2000 + std::uint64_t(c) * 64 + r)));
      if (r > 0) {
        app_nodes_.push_back(members[r]);
        app_endpoint_of_node_[members[r]] = int(r);
      }
    }
  }
  for (ClusterId c = 0; c < clusters; ++c) {
    coordinators_.push_back(
        std::make_unique<Coordinator>(*intra_[c][0], *inter_[c]));
  }
}

bool RtComposition::start(std::chrono::milliseconds timeout) {
  const bool inter_token = is_token_based(cfg_.inter_algorithm);
  const bool intra_token = is_token_based(cfg_.intra_algorithm);
  for (auto& ep : inter_)
    ep->init(inter_token ? int(cfg_.initial_cluster)
                         : MutexAlgorithm::kNoHolder);
  for (auto& cluster : intra_)
    for (auto& ep : cluster)
      ep->init(intra_token ? 0 : MutexAlgorithm::kNoHolder);
  // All inits must land before any protocol traffic.
  if (!rt_.wait_quiescent(timeout)) return false;
  for (ClusterId c = 0; c < cluster_count(); ++c) {
    Coordinator* coord = coordinators_[c].get();
    rt_.post(rt_.topology().first_node_of(c), [coord] { coord->start(); });
  }
  return rt_.wait_quiescent(timeout);
}

RtMutexEndpoint& RtComposition::app_mutex(NodeId node) {
  GMX_ASSERT(node < app_endpoint_of_node_.size());
  const int idx = app_endpoint_of_node_[node];
  GMX_ASSERT_MSG(idx > 0, "node is a coordinator, not an application node");
  const ClusterId c = rt_.topology().cluster_of(node);
  return *intra_[c][std::size_t(idx)];
}

int RtComposition::privileged_coordinators() const {
  int n = 0;
  for (const auto& coord : coordinators_)
    if (coord->cluster_privileged()) ++n;
  return n;
}

}  // namespace gmx::rt
