#include "gridmutex/rt/endpoint.hpp"

#include "gridmutex/sim/assert.hpp"

namespace gmx::rt {

RtMutexEndpoint::RtMutexEndpoint(RtRuntime& rt, ProtocolId protocol,
                                 std::vector<NodeId> members, int self_rank,
                                 std::unique_ptr<MutexAlgorithm> algorithm,
                                 Rng rng)
    : rt_(rt),
      protocol_(protocol),
      members_(std::move(members)),
      rank_(self_rank),
      algo_(std::move(algorithm)),
      rng_(rng),
      epoch_(std::chrono::steady_clock::now()) {
  GMX_ASSERT(!members_.empty());
  GMX_ASSERT(self_rank >= 0 && std::size_t(self_rank) < members_.size());
  for (std::size_t r = 0; r < members_.size(); ++r) {
    const auto [it, inserted] = rank_of_.emplace(members_[r], int(r));
    (void)it;
    GMX_ASSERT_MSG(inserted, "duplicate node in member list");
  }
  algo_->attach(*this, *this);
  rt_.attach(node(), protocol_,
             [this](const Message& m) { handle_message(m); });
}

void RtMutexEndpoint::init(int holder_rank) {
  rt_.post(node(), [this, holder_rank] {
    algo_affinity_.check("rt: algorithm state touched off its node thread");
    algo_->init(holder_rank);
  });
}

void RtMutexEndpoint::request_cs() {
  rt_.post(node(), [this] {
    algo_affinity_.check("rt: algorithm state touched off its node thread");
    algo_->request_cs();
  });
}

void RtMutexEndpoint::release_cs() {
  rt_.post(node(), [this] {
    algo_affinity_.check("rt: algorithm state touched off its node thread");
    algo_->release_cs();
  });
}

int RtMutexEndpoint::cluster_of_rank(int rank) const {
  GMX_ASSERT(rank >= 0 && std::size_t(rank) < members_.size());
  return int(rt_.topology().cluster_of(members_[std::size_t(rank)]));
}

void RtMutexEndpoint::send(int to_rank, std::uint16_t type,
                           std::span<const std::uint8_t> payload) {
  GMX_ASSERT(to_rank >= 0 && std::size_t(to_rank) < members_.size());
  GMX_ASSERT_MSG(to_rank != rank_, "algorithm attempted a self-send");
  Message m;
  m.src = node();
  m.dst = members_[std::size_t(to_rank)];
  m.protocol = protocol_;
  m.type = type;
  // Heap-origin block (never a pooled one): the handle crosses threads via
  // the runtime's queues, and a pool's free-list is single-threaded.
  m.payload = Payload(payload);
  rt_.send(std::move(m));
}

SimTime RtMutexEndpoint::now() const {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count();
  return SimTime::from_ns(ns);
}

void RtMutexEndpoint::on_cs_granted() {
  if (!callbacks_.on_granted) return;
  rt_.post(node(), [cb = callbacks_.on_granted] { cb(); });
}

void RtMutexEndpoint::on_pending_request() {
  if (!callbacks_.on_pending) return;
  rt_.post(node(), [cb = callbacks_.on_pending] { cb(); });
}

void RtMutexEndpoint::handle_message(const Message& msg) {
  algo_affinity_.check("rt: algorithm state touched off its node thread");
  const auto it = rank_of_.find(msg.src);
  GMX_ASSERT_MSG(it != rank_of_.end(),
                 "message from a node outside this instance");
  algo_->on_message(it->second, msg.type, wire::Reader(msg.payload));
}

}  // namespace gmx::rt
