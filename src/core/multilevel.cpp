#include "gridmutex/core/multilevel.hpp"

#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/sim/assert.hpp"

namespace gmx {

namespace {

/// Leaves (level-0 groups) contained in one level-l group.
std::uint32_t leaves_per_group(const HierarchySpec& spec, std::size_t level) {
  std::uint32_t n = 1;
  for (std::size_t k = 1; k <= level; ++k) n *= spec.arity[k];
  return n;
}

void validate(const HierarchySpec& spec) {
  GMX_ASSERT_MSG(spec.levels() >= 2, "hierarchy needs at least two levels");
  GMX_ASSERT_MSG(spec.algorithms.size() == spec.levels(),
                 "one algorithm per level");
  for (std::uint32_t a : spec.arity)
    GMX_ASSERT_MSG(a >= 1, "empty level in hierarchy");
}

/// Node id of the coordinator of (level, group). Level-0 coordinators are
/// the first node of their cluster; level-l>0 coordinators live at offset
/// 1 + arity[0] + (l-1) inside the first leaf cluster of their group.
NodeId coordinator_node(const Topology& topo, const HierarchySpec& spec,
                        std::size_t level, std::uint32_t group) {
  const std::uint32_t leaf =
      group * leaves_per_group(spec, level);
  const NodeId base = topo.first_node_of(leaf);
  if (level == 0) return base;
  return base + 1 + spec.arity[0] + std::uint32_t(level - 1);
}

}  // namespace

std::uint32_t HierarchySpec::groups_at(std::size_t level) const {
  GMX_ASSERT(level < levels());
  std::uint32_t n = 1;
  for (std::size_t k = level + 1; k < levels(); ++k) n *= arity[k];
  return n;
}

std::uint32_t HierarchySpec::application_count() const {
  return arity[0] * groups_at(0);
}

Topology MultiLevelComposition::make_topology(const HierarchySpec& spec) {
  validate(spec);
  const std::uint32_t leaves = spec.groups_at(0);
  std::vector<std::uint32_t> sizes(leaves, 1 + spec.arity[0]);
  // Host each inner (level 1..L-2) coordinator in its group's first leaf.
  for (std::size_t l = 1; l + 1 < spec.levels(); ++l) {
    const std::uint32_t per = leaves_per_group(spec, l);
    for (std::uint32_t g = 0; g < spec.groups_at(l); ++g)
      sizes[g * per] += 1;
  }
  return Topology::from_sizes(sizes);
}

std::shared_ptr<MatrixLatencyModel> MultiLevelComposition::make_latency(
    const HierarchySpec& spec, std::span<const SimDuration> level_delays,
    double jitter_fraction) {
  validate(spec);
  GMX_ASSERT_MSG(level_delays.size() == spec.levels(),
                 "one delay per hierarchy level");
  const std::uint32_t leaves = spec.groups_at(0);
  std::vector<double> ms(std::size_t(leaves) * leaves);
  for (std::uint32_t i = 0; i < leaves; ++i) {
    for (std::uint32_t j = 0; j < leaves; ++j) {
      std::size_t lca = 0;
      while (i / leaves_per_group(spec, lca) !=
             j / leaves_per_group(spec, lca)) {
        ++lca;
      }
      ms[std::size_t(i) * leaves + j] = level_delays[lca].as_ms();
    }
  }
  return std::make_shared<MatrixLatencyModel>(std::move(ms), leaves,
                                              jitter_fraction);
}

MultiLevelComposition::MultiLevelComposition(Network& net, HierarchySpec spec,
                                             ProtocolId protocol_base,
                                             std::uint64_t seed)
    : net_(net), spec_(std::move(spec)) {
  validate(spec_);
  const Topology& topo = net_.topology();
  GMX_ASSERT_MSG(topo.cluster_count() == spec_.leaf_groups(),
                 "topology does not match hierarchy (use make_topology)");
  Rng root(seed);
  ProtocolId next_protocol = protocol_base;
  const std::size_t levels = spec_.levels();

  app_index_of_node_.assign(topo.node_count(), -1);
  instances_.resize(levels);
  coordinators_.resize(levels - 1);

  for (std::size_t l = 0; l < levels; ++l) {
    const std::uint32_t groups = spec_.groups_at(l);
    const bool is_root = (l + 1 == levels);
    const bool token = is_token_based(spec_.algorithms[l]);
    instances_[l].resize(groups);
    for (std::uint32_t g = 0; g < groups; ++g) {
      // Member list: own coordinator first (non-root), then children.
      std::vector<NodeId> members;
      if (!is_root) members.push_back(coordinator_node(topo, spec_, l, g));
      if (l == 0) {
        for (std::uint32_t i = 0; i < spec_.arity[0]; ++i)
          members.push_back(topo.first_node_of(g) + 1 + i);
      } else {
        for (std::uint32_t c = 0; c < spec_.arity[l]; ++c)
          members.push_back(
              coordinator_node(topo, spec_, l - 1, g * spec_.arity[l] + c));
      }
      const ProtocolId proto = next_protocol++;
      auto& inst = instances_[l][g];
      for (std::size_t r = 0; r < members.size(); ++r) {
        inst.push_back(std::make_unique<MutexEndpoint>(
            net_, proto, members, int(r),
            make_algorithm(spec_.algorithms[l]),
            root.fork((l << 24) ^ (std::uint64_t(g) << 8) ^ r)));
        if (l == 0 && r > 0) {
          app_nodes_.push_back(members[r]);
          app_index_of_node_[members[r]] = int(r);
        }
      }
      for (auto& ep : inst)
        ep->init(token ? 0 : MutexAlgorithm::kNoHolder);
    }
  }

  // Automata: (lower = own instance rank 0, upper = slot in parent).
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    const std::uint32_t groups = spec_.groups_at(l);
    const bool parent_is_root = (l + 2 == levels);
    for (std::uint32_t g = 0; g < groups; ++g) {
      const std::uint32_t parent = g / spec_.arity[l + 1];
      const std::uint32_t child_slot = g % spec_.arity[l + 1];
      const std::size_t upper_rank =
          parent_is_root ? child_slot : child_slot + 1;
      coordinators_[l].push_back(std::make_unique<Coordinator>(
          *instances_[l][g][0], *instances_[l + 1][parent][upper_rank]));
    }
  }
}

MultiLevelComposition::~MultiLevelComposition() = default;

void MultiLevelComposition::start() {
  for (auto& level : coordinators_)
    for (auto& coord : level) coord->start();
}

MutexEndpoint& MultiLevelComposition::app_mutex(NodeId node) {
  GMX_ASSERT(node < app_index_of_node_.size());
  const int idx = app_index_of_node_[node];
  GMX_ASSERT_MSG(idx > 0, "node does not host an application");
  const ClusterId c = net_.topology().cluster_of(node);
  return *instances_[0][c][std::size_t(idx)];
}

Coordinator& MultiLevelComposition::coordinator(std::size_t level,
                                                std::uint32_t group) {
  GMX_ASSERT(level + 1 < spec_.levels());
  GMX_ASSERT(group < coordinators_[level].size());
  return *coordinators_[level][group];
}

std::uint32_t MultiLevelComposition::coordinator_count(
    std::size_t level) const {
  GMX_ASSERT(level + 1 < spec_.levels());
  return std::uint32_t(coordinators_[level].size());
}

int MultiLevelComposition::privileged_at(std::size_t level) const {
  GMX_ASSERT(level + 1 < spec_.levels());
  int n = 0;
  for (const auto& coord : coordinators_[level])
    if (coord->cluster_privileged()) ++n;
  return n;
}

}  // namespace gmx
