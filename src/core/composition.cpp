#include "gridmutex/core/composition.hpp"

#include "gridmutex/sim/assert.hpp"

namespace gmx {

Topology Composition::make_topology(std::uint32_t clusters,
                                    std::uint32_t apps_per_cluster) {
  return Topology::uniform(clusters, apps_per_cluster + 1);
}

Composition::Composition(Network& net, CompositionConfig cfg)
    : net_(net), cfg_(std::move(cfg)) {
  const Topology& topo = net_.topology();
  const std::uint32_t clusters = topo.cluster_count();
  GMX_ASSERT_MSG(cfg_.initial_cluster < clusters,
                 "initial cluster out of range");
  Rng root(cfg_.seed);

  // Inter instance: one endpoint per coordinator node; rank == cluster id.
  std::vector<NodeId> coordinator_nodes;
  coordinator_nodes.reserve(clusters);
  for (ClusterId c = 0; c < clusters; ++c) {
    GMX_ASSERT_MSG(topo.cluster_size(c) >= 2,
                   "each cluster needs a coordinator and >=1 app node");
    coordinator_nodes.push_back(topo.first_node_of(c));
  }
  const bool inter_token = is_token_based(cfg_.inter_algorithm);
  for (ClusterId c = 0; c < clusters; ++c) {
    inter_.push_back(std::make_unique<MutexEndpoint>(
        net_, inter_protocol(), coordinator_nodes, int(c),
        make_algorithm(cfg_.inter_algorithm), root.fork(1000 + c)));
  }
  for (auto& ep : inter_)
    ep->init(inter_token ? int(cfg_.initial_cluster)
                         : MutexAlgorithm::kNoHolder);

  // Intra instances: per cluster, coordinator first (rank 0 — this also
  // wins Ricart-Agrawala timestamp ties at startup, see
  // mutex/ricart_agrawala.hpp).
  app_endpoint_of_node_.assign(topo.node_count(), -1);
  const bool intra_token = is_token_based(cfg_.intra_algorithm);
  intra_.resize(clusters);
  for (ClusterId c = 0; c < clusters; ++c) {
    const std::vector<NodeId> members = topo.nodes_of(c);
    for (std::size_t r = 0; r < members.size(); ++r) {
      intra_[c].push_back(std::make_unique<MutexEndpoint>(
          net_, intra_protocol(c), members, int(r),
          make_algorithm(cfg_.intra_algorithm),
          root.fork(2000 + std::uint64_t(c) * 64 + r)));
      if (r > 0) {
        app_nodes_.push_back(members[r]);
        app_endpoint_of_node_[members[r]] = int(r);
      }
    }
    for (auto& ep : intra_[c])
      ep->init(intra_token ? 0 : MutexAlgorithm::kNoHolder);
  }

  // Coordinators bridge intra rank 0 with inter rank c.
  for (ClusterId c = 0; c < clusters; ++c) {
    coordinators_.push_back(
        std::make_unique<Coordinator>(*intra_[c][0], *inter_[c]));
  }
}

Composition::~Composition() = default;

void Composition::start() {
  for (auto& coord : coordinators_) coord->start();
}

bool Composition::is_coordinator_node(NodeId node) const {
  return node < app_endpoint_of_node_.size() &&
         app_endpoint_of_node_[node] == -1;
}

MutexEndpoint& Composition::app_mutex(NodeId node) {
  GMX_ASSERT(node < app_endpoint_of_node_.size());
  const int idx = app_endpoint_of_node_[node];
  GMX_ASSERT_MSG(idx > 0, "node is a coordinator, not an application node");
  const ClusterId c = net_.topology().cluster_of(node);
  return *intra_[c][std::size_t(idx)];
}

Coordinator& Composition::coordinator(ClusterId c) {
  GMX_ASSERT(c < coordinators_.size());
  return *coordinators_[c];
}

const Coordinator& Composition::coordinator(ClusterId c) const {
  GMX_ASSERT(c < coordinators_.size());
  return *coordinators_[c];
}

std::vector<MutexEndpoint*> Composition::intra_instance(ClusterId c) {
  GMX_ASSERT(c < intra_.size());
  std::vector<MutexEndpoint*> out;
  out.reserve(intra_[c].size());
  for (auto& ep : intra_[c]) out.push_back(ep.get());
  return out;
}

std::vector<MutexEndpoint*> Composition::inter_instance() {
  std::vector<MutexEndpoint*> out;
  out.reserve(inter_.size());
  for (auto& ep : inter_) out.push_back(ep.get());
  return out;
}

std::function<std::string(ProtocolId, std::uint16_t)>
Composition::trace_labeler(std::string prefix) const {
  const ProtocolId inter = inter_protocol();
  const ProtocolId intra_base = intra_protocol(0);
  const std::uint32_t clusters = cluster_count();
  const std::string intra_name = cfg_.intra_algorithm;
  const std::string inter_name = cfg_.inter_algorithm;
  const bool chained = !prefix.empty();
  return [=, prefix = std::move(prefix)](ProtocolId p,
                                         std::uint16_t type) -> std::string {
    if (p == inter)
      return prefix + "inter(" + inter_name + ")." +
             message_type_name(inter_name, type);
    if (p >= intra_base && p < intra_base + clusters)
      return prefix + "intra[" + std::to_string(p - intra_base) + "](" +
             intra_name + ")." + message_type_name(intra_name, type);
    // Standalone use keeps the anonymous fallback; in a chain (non-empty
    // prefix) foreign ids defer to the next labeler.
    if (chained) return {};
    return "p" + std::to_string(p) + ".t" + std::to_string(type);
  };
}

int Composition::privileged_coordinators() const {
  int n = 0;
  for (const auto& coord : coordinators_)
    if (coord->cluster_privileged()) ++n;
  return n;
}

std::uint64_t Composition::total_inter_acquisitions() const {
  std::uint64_t n = 0;
  for (const auto& coord : coordinators_) n += coord->inter_acquisitions();
  return n;
}

}  // namespace gmx
