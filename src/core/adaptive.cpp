#include "gridmutex/core/adaptive.hpp"

#include "gridmutex/sim/assert.hpp"

namespace gmx {

AdaptiveComposition::AdaptiveComposition(Network& net, Composition& comp,
                                         AdaptiveConfig cfg)
    : net_(net),
      comp_(comp),
      cfg_(std::move(cfg)),
      current_(comp.config().inter_algorithm) {
  GMX_ASSERT(cfg_.low_parallelism_at > cfg_.high_parallelism_at);
  // Validate the three targets eagerly.
  (void)algorithm_factory(cfg_.low_algorithm);
  (void)algorithm_factory(cfg_.mid_algorithm);
  (void)algorithm_factory(cfg_.high_algorithm);
}

void AdaptiveComposition::start() {
  GMX_ASSERT(!running_);
  running_ = true;
  epoch_start_ = net_.simulator().now();
  arm_sampler();
}

void AdaptiveComposition::stop() {
  running_ = false;
  if (!switching_ && timer_ != kInvalidEventId) {
    net_.simulator().cancel(timer_);
    timer_ = kInvalidEventId;
  }
  // A switch in progress keeps polling until the swap completes, leaving
  // the composition in a consistent, resumed state.
}

void AdaptiveComposition::arm_sampler() {
  if (!running_) return;
  timer_ = net_.simulator().schedule_after(cfg_.sample_every,
                                           [this] { sample(); });
}

void AdaptiveComposition::sample() {
  timer_ = kInvalidEventId;
  if (!running_) return;
  // Competing coordinators only: WAIT_FOR_IN means the cluster has demand
  // and does not own the token. A coordinator parked in IN with no rival is
  // not contention (the paper's regimes count *requesting* clusters).
  int demanding = 0;
  for (ClusterId c = 0; c < comp_.cluster_count(); ++c) {
    if (comp_.coordinator(c).state() == Coordinator::State::kWaitForIn)
      ++demanding;
  }
  demand_accum_ += double(demanding) / double(comp_.cluster_count());
  ++samples_;
  if (net_.simulator().now() - epoch_start_ >= cfg_.epoch) evaluate_epoch();
  if (!switching_) arm_sampler();
}

void AdaptiveComposition::evaluate_epoch() {
  last_demand_ = samples_ == 0 ? 0.0 : demand_accum_ / double(samples_);
  demand_accum_ = 0.0;
  samples_ = 0;
  epoch_start_ = net_.simulator().now();
  const std::string& want = pick_algorithm(last_demand_);
  if (want != current_) begin_switch(want);
}

const std::string& AdaptiveComposition::pick_algorithm(double demand) const {
  if (demand >= cfg_.low_parallelism_at) return cfg_.low_algorithm;
  if (demand <= cfg_.high_parallelism_at) return cfg_.high_algorithm;
  return cfg_.mid_algorithm;
}

void AdaptiveComposition::begin_switch(const std::string& target) {
  GMX_ASSERT(!switching_);
  switching_ = true;
  target_ = target;
  for (ClusterId c = 0; c < comp_.cluster_count(); ++c)
    comp_.coordinator(c).pause_inter_requests();
  net_.simulator().schedule_after(cfg_.quiesce_poll,
                                  [this] { poll_quiesce(); });
}

void AdaptiveComposition::poll_quiesce() {
  bool all_out = true;
  for (ClusterId c = 0; c < comp_.cluster_count(); ++c) {
    Coordinator& coord = comp_.coordinator(c);
    if (coord.state() == Coordinator::State::kIn) coord.force_vacate();
    if (coord.state() != Coordinator::State::kOut) all_out = false;
  }
  if (all_out && net_.in_flight_for(comp_.inter_protocol()) == 0) {
    do_swap();
    return;
  }
  net_.simulator().schedule_after(cfg_.quiesce_poll,
                                  [this] { poll_quiesce(); });
}

void AdaptiveComposition::do_swap() {
  // Carry the idle inter token's location into the new instance.
  ClusterId holder = comp_.config().initial_cluster;
  bool found = false;
  for (std::size_t c = 0; c < comp_.inter_.size(); ++c) {
    if (comp_.inter_[c]->holds_token()) {
      GMX_ASSERT_MSG(!found, "two inter tokens at swap time");
      holder = ClusterId(c);
      found = true;
    }
  }
  const std::vector<NodeId> members = comp_.inter_[0]->members();
  const ProtocolId proto = comp_.inter_protocol();
  Rng root(comp_.config().seed ^ 0xADA9'71CEull ^
           std::uint64_t(switches_ + 1));

  comp_.inter_.clear();  // detaches the old instance
  const bool token = is_token_based(target_);
  for (std::size_t c = 0; c < members.size(); ++c) {
    comp_.inter_.push_back(std::make_unique<MutexEndpoint>(
        net_, proto, members, int(c), make_algorithm(target_),
        root.fork(c)));
  }
  for (auto& ep : comp_.inter_)
    ep->init(token ? int(holder) : MutexAlgorithm::kNoHolder);
  for (ClusterId c = 0; c < comp_.cluster_count(); ++c)
    comp_.coordinator(c).rebind_inter(*comp_.inter_[c]);
  for (ClusterId c = 0; c < comp_.cluster_count(); ++c)
    comp_.coordinator(c).resume_inter_requests();

  current_ = target_;
  ++switches_;
  switching_ = false;
  // Fresh epoch under the new algorithm.
  demand_accum_ = 0.0;
  samples_ = 0;
  epoch_start_ = net_.simulator().now();
  arm_sampler();
}

}  // namespace gmx
