#include "gridmutex/core/coordinator.hpp"

#include "gridmutex/sim/assert.hpp"

namespace gmx {

std::string_view to_string(Coordinator::State s) {
  switch (s) {
    case Coordinator::State::kOut:
      return "OUT";
    case Coordinator::State::kWaitForIn:
      return "WAIT_FOR_IN";
    case Coordinator::State::kIn:
      return "IN";
    case Coordinator::State::kWaitForOut:
      return "WAIT_FOR_OUT";
  }
  return "?";
}

Coordinator::Coordinator(MutexHandle& intra, MutexHandle& inter)
    : intra_(intra), inter_(inter) {
  GMX_ASSERT_MSG(intra_.node() == inter_.get().node(),
                 "the coordinator's two endpoints must share a node");
  intra_.set_callbacks(MutexCallbacks{[this] { on_intra_granted(); },
                                      [this] { on_intra_pending(); }});
  inter_.get().set_callbacks(MutexCallbacks{[this] { on_inter_granted(); },
                                            [this] { on_inter_pending(); }});
}

void Coordinator::start() {
  GMX_ASSERT_MSG(!started_, "start() called twice");
  GMX_ASSERT_MSG(intra_.state() == CsState::kIdle,
                 "coordinator must start before any intra activity");
  started_ = true;
  // OUT requires Intra=CS. For token-based intra algorithms the coordinator
  // is the initial holder, so this grant is instantaneous; for
  // permission-based ones (Ricart-Agrawala) the request wins every startup
  // race by rank-0 tie-break and the CS arrives within one LAN round-trip.
  intra_.request_cs();
}

void Coordinator::go(State to) {
  const State from = state_;
  state_ = to;
  ++transitions_;
  if (checker_hook_) checker_hook_(*this, from, to);
  if (hook_) hook_(*this, from, to);
}

void Coordinator::request_inter() {
  inter_.get().request_cs();
  go(State::kWaitForIn);
}

void Coordinator::on_intra_pending() {
  // Paper Fig. 2 line 9: a local application wants the CS.
  if (state_ != State::kOut) return;       // already acting on it
  if (!intra_.has_pending_requests()) return;  // stale deferred event
  if (paused_) {
    want_inter_ = true;
    return;
  }
  request_inter();
}

void Coordinator::on_inter_granted() {
  GMX_ASSERT_MSG(state_ == State::kWaitForIn,
                 "inter CS granted outside WAIT_FOR_IN");
  ++inter_acquisitions_;
  go(State::kIn);
  // Paper Fig. 2 line 11: hand the intra token to the waiting application.
  // With a permission-based intra algorithm the coordinator's own startup
  // CS grant may still be in flight (token-based grants are instantaneous);
  // then the handover completes from on_intra_granted().
  if (intra_.in_cs()) {
    complete_handover();
  } else {
    handover_pending_ = true;
  }
}

void Coordinator::complete_handover() {
  intra_.release_cs();
  // Level-triggered re-check: remote coordinators may have queued behind us
  // while the inter grant was in flight.
  if (inter_.get().has_pending_requests()) {
    go(State::kWaitForOut);
    intra_.request_cs();
  }
}

void Coordinator::on_inter_pending() {
  // Paper Fig. 2 line 16: another coordinator wants the inter token; we may
  // release it only once we hold our intra token again (no local app in CS).
  if (state_ != State::kIn) return;  // WAIT_FOR_OUT: reclaim already running;
                                     // OUT/WAIT_FOR_IN: inter layer handles
                                     // it without us (token not in our CS)
  go(State::kWaitForOut);
  intra_.request_cs();
}

void Coordinator::on_intra_granted() {
  if (handover_pending_ && state_ == State::kIn) {
    // Delayed startup grant of a permission-based intra algorithm arriving
    // after the inter token (see on_inter_granted).
    handover_pending_ = false;
    complete_handover();
    return;
  }
  if (state_ == State::kWaitForOut) {
    enter_out();
    return;
  }
  if (state_ == State::kOut) {
    // Echo of start()'s grant. With a permission-based intra algorithm the
    // grant may arrive only after a LAN round-trip, and local requests that
    // queued in the meantime produced no pending *edge* (the algorithm was
    // not yet in CS) — re-check the level or the cluster deadlocks.
    if (paused_) {
      want_inter_ = intra_.has_pending_requests();
      return;
    }
    if (intra_.has_pending_requests()) request_inter();
  }
}

void Coordinator::enter_out() {
  // Paper Fig. 2 line 18: we hold the intra token again — no local
  // application is in (or can enter) the CS; the inter token may leave.
  go(State::kOut);
  inter_.get().release_cs();
  vacate_requested_ = false;
  if (paused_) {
    want_inter_ = intra_.has_pending_requests();
    return;
  }
  // Local requests that queued while we were reclaiming restart the cycle.
  if (intra_.has_pending_requests()) request_inter();
}

void Coordinator::pause_inter_requests() { paused_ = true; }

void Coordinator::resume_inter_requests() {
  GMX_ASSERT(paused_);
  paused_ = false;
  const bool demand = want_inter_ || intra_.has_pending_requests();
  want_inter_ = false;
  if (state_ == State::kOut && demand) request_inter();
}

void Coordinator::force_vacate() {
  if (state_ != State::kIn || vacate_requested_) return;
  vacate_requested_ = true;
  go(State::kWaitForOut);
  intra_.request_cs();
}

void Coordinator::rebind_inter(MutexHandle& inter) {
  GMX_ASSERT_MSG(paused_ && state_ == State::kOut,
                 "rebind requires a paused coordinator in OUT");
  inter_ = inter;
  inter_.get().set_callbacks(MutexCallbacks{[this] { on_inter_granted(); },
                                            [this] { on_inter_pending(); }});
}

}  // namespace gmx
