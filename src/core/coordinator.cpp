#include "gridmutex/core/coordinator.hpp"

#include "gridmutex/sim/assert.hpp"

namespace gmx {

std::string_view to_string(Coordinator::State s) {
  switch (s) {
    case Coordinator::State::kOut:
      return "OUT";
    case Coordinator::State::kWaitForIn:
      return "WAIT_FOR_IN";
    case Coordinator::State::kIn:
      return "IN";
    case Coordinator::State::kWaitForOut:
      return "WAIT_FOR_OUT";
  }
  return "?";
}

Coordinator::Coordinator(MutexHandle& intra, MutexHandle& inter)
    : intra_(intra), inter_(inter) {
  GMX_ASSERT_MSG(intra_.node() == inter_.get().node(),
                 "the coordinator's two endpoints must share a node");
  intra_.set_callbacks(MutexCallbacks{[this] { on_intra_granted(); },
                                      [this] { on_intra_pending(); }});
  inter_.get().set_callbacks(MutexCallbacks{[this] { on_inter_granted(); },
                                            [this] { on_inter_pending(); }});
}

void Coordinator::start() {
  GMX_ASSERT_MSG(!started_, "start() called twice");
  GMX_ASSERT_MSG(intra_.state() == CsState::kIdle,
                 "coordinator must start before any intra activity");
  started_ = true;
  // OUT requires Intra=CS. For token-based intra algorithms the coordinator
  // is the initial holder, so this grant is instantaneous; for
  // permission-based ones (Ricart-Agrawala) the request wins every startup
  // race by rank-0 tie-break and the CS arrives within one LAN round-trip.
  intra_.request_cs();
}

void Coordinator::go(State to) {
  const State from = state_;
  state_ = to;
  ++transitions_;
  if (checker_hook_) checker_hook_(*this, from, to);
  if (hook_) hook_(*this, from, to);
}

void Coordinator::request_inter() {
  inter_.get().request_cs();
  go(State::kWaitForIn);
}

void Coordinator::on_intra_pending() {
  if (failed_) return;  // crashed process: the upcall is lost
  // Paper Fig. 2 line 9: a local application wants the CS.
  if (state_ != State::kOut) return;       // already acting on it
  if (!intra_.has_pending_requests()) return;  // stale deferred event
  if (paused_) {
    want_inter_ = true;
    return;
  }
  request_inter();
}

void Coordinator::on_inter_granted() {
  if (failed_) return;  // crashed process: recover() replays from level state
  if (state_ != State::kWaitForIn) {
    // A deferred grant callback can trail a recover() that already replayed
    // the WAIT_FOR_IN → IN edge from the endpoint's level state; the echo
    // is a duplicate, not a protocol violation. Never legal otherwise.
    GMX_ASSERT_MSG(recovered_once_, "inter CS granted outside WAIT_FOR_IN");
    return;
  }
  ++inter_acquisitions_;
  go(State::kIn);
  // Paper Fig. 2 line 11: hand the intra token to the waiting application.
  // With a permission-based intra algorithm the coordinator's own startup
  // CS grant may still be in flight (token-based grants are instantaneous);
  // then the handover completes from on_intra_granted().
  if (intra_.in_cs()) {
    complete_handover();
  } else {
    handover_pending_ = true;
  }
}

void Coordinator::complete_handover() {
  intra_.release_cs();
  // Level-triggered re-check: remote coordinators may have queued behind us
  // while the inter grant was in flight.
  if (inter_.get().has_pending_requests()) {
    go(State::kWaitForOut);
    intra_.request_cs();
  }
}

void Coordinator::on_inter_pending() {
  if (failed_) return;  // crashed process: the upcall is lost
  // Paper Fig. 2 line 16: another coordinator wants the inter token; we may
  // release it only once we hold our intra token again (no local app in CS).
  if (state_ != State::kIn) return;  // WAIT_FOR_OUT: reclaim already running;
                                     // OUT/WAIT_FOR_IN: inter layer handles
                                     // it without us (token not in our CS)
  go(State::kWaitForOut);
  intra_.request_cs();
}

void Coordinator::on_intra_granted() {
  if (failed_) return;  // crashed process: recover() replays from level state
  if (handover_pending_ && state_ == State::kIn) {
    // Delayed startup grant of a permission-based intra algorithm arriving
    // after the inter token (see on_inter_granted).
    handover_pending_ = false;
    complete_handover();
    return;
  }
  if (state_ == State::kWaitForOut) {
    enter_out();
    return;
  }
  if (state_ == State::kOut) {
    // Echo of start()'s grant. With a permission-based intra algorithm the
    // grant may arrive only after a LAN round-trip, and local requests that
    // queued in the meantime produced no pending *edge* (the algorithm was
    // not yet in CS) — re-check the level or the cluster deadlocks.
    if (paused_) {
      want_inter_ = intra_.has_pending_requests();
      return;
    }
    if (intra_.has_pending_requests()) request_inter();
  }
}

void Coordinator::enter_out() {
  // Paper Fig. 2 line 18: we hold the intra token again — no local
  // application is in (or can enter) the CS; the inter token may leave.
  go(State::kOut);
  inter_.get().release_cs();
  vacate_requested_ = false;
  if (paused_) {
    want_inter_ = intra_.has_pending_requests();
    return;
  }
  // Local requests that queued while we were reclaiming restart the cycle.
  if (intra_.has_pending_requests()) request_inter();
}

void Coordinator::pause_inter_requests() { paused_ = true; }

void Coordinator::resume_inter_requests() {
  GMX_ASSERT(paused_);
  paused_ = false;
  const bool demand = want_inter_ || intra_.has_pending_requests();
  want_inter_ = false;
  if (state_ == State::kOut && demand) request_inter();
}

void Coordinator::force_vacate() {
  if (state_ != State::kIn || vacate_requested_) return;
  vacate_requested_ = true;
  go(State::kWaitForOut);
  intra_.request_cs();
}

void Coordinator::fail() {
  GMX_ASSERT_MSG(started_, "fail() before start()");
  GMX_ASSERT_MSG(!failed_, "fail() called twice");
  failed_ = true;
}

void Coordinator::recover() {
  GMX_ASSERT_MSG(failed_, "recover() without fail()");
  failed_ = false;
  recovered_once_ = true;
  handover_pending_ = false;
  vacate_requested_ = false;
  // Replay the automaton edges whose triggering upcalls were swallowed
  // during the crash window. The endpoints' protocol state advanced without
  // us (grants land in the algorithm even while callbacks are lost), so the
  // pre-crash state plus the current level state pinpoint each missed edge.
  switch (state_) {
    case State::kOut:
      // Missed on_intra_pending edges: re-check the level.
      if (paused_) {
        want_inter_ = intra_.has_pending_requests();
      } else if (intra_.in_cs() && intra_.has_pending_requests()) {
        request_inter();
      }
      break;
    case State::kWaitForIn:
      if (inter_.get().in_cs()) {
        // The inter grant landed mid-crash: replay WAIT_FOR_IN → IN,
        // including the acquisition count the swallowed upcall would have
        // recorded (its late echo, if any, is ignored in on_inter_granted).
        ++inter_acquisitions_;
        go(State::kIn);
        if (intra_.in_cs()) {
          complete_handover();
        } else {
          handover_pending_ = true;
        }
      }
      break;
    case State::kIn:
      // Missed on_inter_pending edges: re-check remote demand.
      if (inter_.get().has_pending_requests()) {
        go(State::kWaitForOut);
        intra_.request_cs();
      }
      break;
    case State::kWaitForOut:
      // The intra reclaim may have completed mid-crash.
      if (intra_.in_cs()) enter_out();
      break;
  }
}

void Coordinator::rebind_inter(MutexHandle& inter) {
  GMX_ASSERT_MSG(paused_ && state_ == State::kOut,
                 "rebind requires a paused coordinator in OUT");
  inter_ = inter;
  inter_.get().set_callbacks(MutexCallbacks{[this] { on_inter_granted(); },
                                            [this] { on_inter_pending(); }});
}

}  // namespace gmx
