#include "gridmutex/fault/injector.hpp"

#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

FaultInjector::FaultInjector(Network& net, FaultPlan plan)
    : net_(net), plan_(std::move(plan)) {}

FaultInjector::~FaultInjector() {
  for (const EventId id : scheduled_) net_.simulator().cancel(id);
  if (armed_ && !drops_.empty()) net_.set_drop_filter(nullptr);
}

void FaultInjector::schedule(SimTime at, std::function<void()> fn) {
  scheduled_.push_back(net_.simulator().schedule_at(at, std::move(fn)));
}

void FaultInjector::arm() {
  GMX_ASSERT_MSG(!armed_, "arm() called twice");
  armed_ = true;
  const SimTime now = net_.simulator().now();
  for (const auto& c : plan_.crashes) {
    GMX_ASSERT(c.at >= now);
    GMX_ASSERT(c.restart > c.at);
    schedule(c.at, [this, node = c.node] {
      ++active_windows_;
      set_node(node, false);
    });
    if (c.restart < SimTime::max())
      schedule(c.restart, [this, node = c.node] {
        --active_windows_;
        set_node(node, true);
      });
  }
  for (const auto& c : plan_.client_crashes) {
    GMX_ASSERT(c.at >= now);
    GMX_ASSERT(c.restart > c.at);
    schedule(c.at, [this, node = c.node] {
      ++active_windows_;
      set_client(node, false);
    });
    if (c.restart < SimTime::max())
      schedule(c.restart, [this, node = c.node] {
        --active_windows_;
        set_client(node, true);
      });
  }
  for (const auto& p : plan_.partitions) {
    GMX_ASSERT(p.at >= now && p.heal > p.at);
    schedule(p.at, [this, a = p.a, b = p.b] {
      net_.partition(a, b);
      ++active_windows_;
      ++stats_.partitions;
    });
    if (p.heal < SimTime::max())
      schedule(p.heal, [this, a = p.a, b = p.b] {
        net_.heal(a, b);
        --active_windows_;
        ++stats_.heals;
      });
  }
  for (const auto& l : plan_.lossy_links) {
    GMX_ASSERT(l.at >= now && l.until > l.at);
    schedule(l.at, [this, l] {
      net_.set_link_drop_probability(l.a, l.b, l.p);
      ++active_windows_;
      ++stats_.lossy_links;
    });
    if (l.until < SimTime::max())
      schedule(l.until, [this, a = l.a, b = l.b] {
        net_.set_link_drop_probability(a, b, 0.0);
        --active_windows_;
      });
  }
  if (!plan_.message_drops.empty()) {
    drops_.reserve(plan_.message_drops.size());
    for (const auto& d : plan_.message_drops) {
      GMX_ASSERT(d.count > 0 && d.until > d.from);
      drops_.push_back({d, d.count});
    }
    net_.set_drop_filter([this](const Message& m) { return should_drop(m); });
  }
}

void FaultInjector::set_node(NodeId node, bool up) {
  net_.set_node_up(node, up);
  if (up) {
    ++stats_.restarts;
  } else {
    ++stats_.crashes;
  }
  for (const auto& hook : node_hooks_) hook(node, up);
}

void FaultInjector::inject_client_crash(NodeId node, SimTime restart) {
  ++active_windows_;
  set_client(node, false);
  if (restart < SimTime::max()) {
    GMX_ASSERT(restart > net_.simulator().now());
    schedule(restart, [this, node] {
      --active_windows_;
      set_client(node, true);
    });
  }
}

void FaultInjector::set_client(NodeId node, bool up) {
  // A dead client process stops sending and receiving — the same omission
  // window as a node crash — but only client hooks fire, so failover and
  // token-recovery machinery watching node events stays quiet.
  net_.set_node_up(node, up);
  if (up) {
    ++stats_.client_restarts;
  } else {
    ++stats_.client_crashes;
  }
  for (const auto& hook : client_hooks_) hook(node, up);
}

int FaultInjector::active_faults() const {
  int n = active_windows_;
  const SimTime now = net_.simulator().now();
  for (const ActiveDrop& d : drops_) {
    if (d.remaining > 0 && now >= d.rule.from && now < d.rule.until) ++n;
  }
  return n;
}

bool FaultInjector::should_drop(const Message& msg) {
  const SimTime now = net_.simulator().now();
  for (ActiveDrop& d : drops_) {
    if (d.remaining <= 0) continue;
    if (msg.protocol != d.rule.protocol) continue;
    if (d.rule.type != FaultPlan::kAnyType && msg.type != d.rule.type)
      continue;
    if (now < d.rule.from || now >= d.rule.until) continue;
    --d.remaining;
    ++stats_.targeted_drops;
    return true;
  }
  return false;
}

}  // namespace gmx
