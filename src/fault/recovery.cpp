#include "gridmutex/fault/recovery.hpp"

#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

TokenRecoveryManager::TokenRecoveryManager(Network& net, RecoveryConfig cfg)
    : net_(net), cfg_(cfg) {
  GMX_ASSERT(cfg_.detect_timeout > SimDuration::ns(0));
  GMX_ASSERT(cfg_.probe_interval > SimDuration::ns(0));
  GMX_ASSERT(cfg_.regen_retry > SimDuration::ns(0));
  net_.set_send_tap([this](const Message& m) { on_send(m); });
}

TokenRecoveryManager::~TokenRecoveryManager() {
  for (auto& [proto, w] : watched_) {
    net_.simulator().cancel(w.probe);
    net_.simulator().cancel(w.pending_action);
    for (MutexEndpoint* e : w.endpoints)
      e->algorithm().set_recovery_hook(nullptr);
  }
  net_.set_send_tap(nullptr);
}

void TokenRecoveryManager::watch_instance(std::string name,
                                          ProtocolId protocol,
                                          std::vector<MutexEndpoint*> eps) {
  GMX_ASSERT(!eps.empty());
  GMX_ASSERT_MSG(watched_.find(protocol) == watched_.end(),
                 "instance already watched");
  if (cfg_.enable_retransmit) net_.set_reliable(protocol, cfg_.retransmit);
  Watched w;
  w.name = std::move(name);
  w.protocol = protocol;
  w.endpoints = std::move(eps);
  for (int r = 0; r < int(w.endpoints.size()); ++r) {
    w.endpoints[std::size_t(r)]->algorithm().set_recovery_hook(
        [this, protocol, r] { on_regenerated(protocol, r); });
  }
  auto [it, inserted] = watched_.emplace(protocol, std::move(w));
  GMX_ASSERT(inserted);
  arm_probe(it->second);  // the first probe disarms itself if idle
}

bool TokenRecoveryManager::in_regeneration(ProtocolId protocol) const {
  const auto it = watched_.find(protocol);
  return it != watched_.end() && it->second.regenerating;
}

void TokenRecoveryManager::on_send(const Message& msg) {
  const auto it = watched_.find(msg.protocol);
  if (it == watched_.end()) return;
  if (!it->second.probe_armed) arm_probe(it->second);
}

void TokenRecoveryManager::arm_probe(Watched& w) {
  w.probe_armed = true;
  w.probe = net_.simulator().schedule_after(
      cfg_.probe_interval, [this, p = w.protocol] { probe(p); });
}

bool TokenRecoveryManager::quiescent(const Watched& w) const {
  return net_.in_flight_for(w.protocol) == 0 &&
         net_.unacked_for(w.protocol) == 0;
}

void TokenRecoveryManager::probe(ProtocolId protocol) {
  Watched& w = watched_.at(protocol);
  w.probe_armed = false;
  w.probe = kInvalidEventId;
  if (given_up_) return;
  if (w.regenerating) return;  // retry timer owns the instance for now

  bool outstanding = false;
  int holders = 0;
  for (const MutexEndpoint* e : w.endpoints) {
    if (e->state() == CsState::kRequesting) outstanding = true;
    if (e->holds_token()) ++holders;
  }
  if (!outstanding) {
    // Idle instance: nothing can be lost from a requester's point of view.
    // Deliberately do NOT re-arm — this is what lets the simulation drain.
    w.loss_since = SimTime::max();
    w.stranded_since = SimTime::max();
    return;
  }
  const SimTime now = net_.simulator().now();
  if (holders > 0) {
    w.loss_since = SimTime::max();
    // Stranded token: alive but idle at a holder that knows of no request,
    // while a requester waits and the wire is silent — the request itself
    // died beyond the retry horizon.
    const MutexEndpoint* holder = nullptr;
    for (const MutexEndpoint* e : w.endpoints) {
      if (e->holds_token()) holder = e;
    }
    const bool stranded = quiescent(w) && holder->state() == CsState::kIdle &&
                          !holder->has_pending_requests();
    if (!stranded) {
      w.stranded_since = SimTime::max();
    } else if (w.stranded_since == SimTime::max()) {
      w.stranded_since = now;
    } else if (now - w.stranded_since >= cfg_.detect_timeout) {
      repair_stranded(w);
    }
    arm_probe(w);
    return;
  }
  w.stranded_since = SimTime::max();
  if (!quiescent(w)) {
    w.loss_since = SimTime::max();  // the token may still be in flight
  } else if (w.loss_since == SimTime::max()) {
    w.loss_since = now;
  } else if (now - w.loss_since >= cfg_.detect_timeout) {
    detect_loss(w);
  }
  arm_probe(w);
}

void TokenRecoveryManager::detect_loss(Watched& w) {
  ++stats_.losses_detected;
  w.detected_at = net_.simulator().now();
  w.loss_since = SimTime::max();
  if (!w.endpoints[0]->algorithm().supports_token_regeneration()) {
    // No protocol to rebuild the token with. Latch instead of guessing:
    // probing stops, the run's drain assertion reports the wedge loudly.
    given_up_ = true;
    return;
  }
  w.regenerating = true;
  if (epoch_hook_) epoch_hook_(w.protocol, true);
  w.pending_action = net_.simulator().schedule_after(
      cfg_.election_delay,
      [this, p = w.protocol] { elect_and_begin(watched_.at(p)); });
}

int TokenRecoveryManager::pick_initiator(const Watched& w,
                                         int exclude) const {
  for (int r = int(w.endpoints.size()) - 1; r >= 0; --r) {
    if (r == exclude) continue;
    if (net_.node_up(w.endpoints[std::size_t(r)]->node())) return r;
  }
  return -1;
}

void TokenRecoveryManager::elect_and_begin(Watched& w) {
  w.pending_action = kInvalidEventId;
  if (!w.regenerating) return;
  w.initiator = pick_initiator(w, -1);
  if (w.initiator >= 0) {
    w.endpoints[std::size_t(w.initiator)]
        ->algorithm()
        .begin_token_regeneration();
  }
  // Every live node down is possible mid-campaign; the retry below then
  // re-elects once something restarts.
  w.pending_action = net_.simulator().schedule_after(
      cfg_.regen_retry,
      [this, p = w.protocol] { retry_regeneration(watched_.at(p)); });
}

void TokenRecoveryManager::retry_regeneration(Watched& w) {
  w.pending_action = kInvalidEventId;
  if (!w.regenerating) return;
  bool outstanding = false;
  int holders = 0;
  for (const MutexEndpoint* e : w.endpoints) {
    if (e->state() == CsState::kRequesting) outstanding = true;
    if (e->holds_token()) ++holders;
  }
  if (holders > 0 || !outstanding) {
    // The token resurfaced (or demand evaporated): the detection was a
    // false alarm. Stand down — cancelling the round first, so a straggling
    // reply cannot mint a second token later.
    if (w.initiator >= 0) {
      w.endpoints[std::size_t(w.initiator)]
          ->algorithm()
          .cancel_token_regeneration();
    }
    w.initiator = -1;
    w.regenerating = false;
    ++stats_.false_alarms;
    if (epoch_hook_) epoch_hook_(w.protocol, false);
    if (!w.probe_armed) arm_probe(w);
    return;
  }
  // The round wedged (a consulted peer was down). Cancel before re-electing
  // — two concurrent rounds could each mint a token.
  if (w.initiator >= 0) {
    w.endpoints[std::size_t(w.initiator)]
        ->algorithm()
        .cancel_token_regeneration();
  }
  ++stats_.reelections;
  w.initiator = pick_initiator(w, -1);
  if (w.initiator >= 0) {
    w.endpoints[std::size_t(w.initiator)]
        ->algorithm()
        .begin_token_regeneration();
  }
  w.pending_action = net_.simulator().schedule_after(
      cfg_.regen_retry,
      [this, p = w.protocol] { retry_regeneration(watched_.at(p)); });
}

void TokenRecoveryManager::on_regenerated(ProtocolId protocol, int rank) {
  Watched& w = watched_.at(protocol);
  if (!w.regenerating || rank != w.initiator) return;  // stale echo
  net_.simulator().cancel(w.pending_action);
  w.pending_action = kInvalidEventId;
  w.regenerating = false;
  w.initiator = -1;
  ++stats_.regenerations;
  stats_.recovery_latency.add(net_.simulator().now() - w.detected_at);
  if (epoch_hook_) epoch_hook_(w.protocol, false);
  if (!w.probe_armed) arm_probe(w);
}

void TokenRecoveryManager::repair_stranded(Watched& w) {
  w.stranded_since = SimTime::max();
  if (!w.endpoints[0]->algorithm().supports_token_regeneration()) {
    given_up_ = true;  // surrender_token_to is part of the same extension
    return;
  }
  MutexEndpoint* holder = nullptr;
  int requester = -1;
  for (int r = 0; r < int(w.endpoints.size()); ++r) {
    MutexEndpoint* e = w.endpoints[std::size_t(r)];
    if (e->holds_token()) holder = e;
    if (requester < 0 && e->state() == CsState::kRequesting) requester = r;
  }
  GMX_ASSERT(holder != nullptr && requester >= 0);
  ++stats_.stranded_repairs;
  holder->algorithm().surrender_token_to(requester);
}

}  // namespace gmx
