#include "gridmutex/fault/failover.hpp"

namespace gmx {

CoordinatorFailover::CoordinatorFailover(Composition& comp,
                                         FaultInjector& injector)
    : comp_(comp), sim_(injector.network().simulator()) {
  const Topology& topo = injector.network().topology();
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    if (comp_.is_coordinator_node(n))
      cluster_of_coordinator_[n] = topo.cluster_of(n);
  }
  injector.add_node_hook([this](NodeId node, bool up) { on_node(node, up); });
}

void CoordinatorFailover::on_node(NodeId node, bool up) {
  const auto it = cluster_of_coordinator_.find(node);
  if (it == cluster_of_coordinator_.end()) return;
  Coordinator& coord = comp_.coordinator(it->second);
  if (!up) {
    coord.fail();
    down_since_[node] = sim_.now();
  } else {
    coord.recover();
    ++stats_.failovers;
    stats_.outage.add(sim_.now() - down_since_.at(node));
  }
}

}  // namespace gmx
