#include "gridmutex/service/batch.hpp"

#include <utility>

#include "gridmutex/net/wire.hpp"
#include "gridmutex/sim/assert.hpp"

namespace gmx {

BatchMux::BatchMux(Network& net, ProtocolId protocol)
    : net_(net), protocol_(protocol) {
  const Topology& topo = net_.topology();
  for (NodeId v = 0; v < topo.node_count(); ++v) {
    net_.attach(v, protocol_, [this](const Message& m) { on_frame(m); });
  }
  net_.set_send_router([this](Message& m) { return offer(m); });
  net_.set_in_flight_supplement(
      [this](ProtocolId p) { return read_counter(virtual_in_flight_, p); });
}

BatchMux::~BatchMux() {
  net_.set_send_router({});
  net_.set_in_flight_supplement({});
  const Topology& topo = net_.topology();
  for (NodeId v = 0; v < topo.node_count(); ++v) net_.detach(v, protocol_);
}

std::uint64_t BatchMux::absorbed_for(ProtocolId p) const {
  return read_counter(absorbed_by_protocol_, p);
}

std::uint64_t BatchMux::inter_absorbed_for(ProtocolId p) const {
  return read_counter(inter_absorbed_, p);
}

bool BatchMux::offer(Message& msg) {
  if (flushing_) return false;  // a flushed message continues to the wire
  if (msg.protocol == protocol_) return false;
  // ARQ exclusion: a reliable frame must be sequenced/retransmitted by the
  // network, which a batched copy would silently escape.
  if (net_.reliable(msg.protocol)) return false;
  std::vector<Message>& bucket = buckets_[pair_key(msg.src, msg.dst)];
  if (bucket.empty()) {
    // First message of this pair at this instant: flush after the current
    // event cascade, still at the same simulated time.
    net_.simulator().schedule_at(
        net_.simulator().now(),
        [this, src = msg.src, dst = msg.dst] { flush(src, dst); });
  }
  ++counter(virtual_in_flight_, msg.protocol);
  ++in_transit_;
  bucket.push_back(std::move(msg));
  return true;
}

void BatchMux::flush(NodeId src, NodeId dst) {
  const auto it = buckets_.find(pair_key(src, dst));
  GMX_ASSERT(it != buckets_.end() && !it->second.empty());
  // Swap through the scratch vector rather than erasing the map entry:
  // the bucket keeps its capacity (and its hash node) for the next burst
  // on this pair, so steady-state flushing allocates nothing.
  flush_scratch_.clear();
  std::vector<Message>& subs = flush_scratch_;
  subs.swap(it->second);

  if (subs.size() == 1) {
    // Nothing to piggyback on: the message travels as it would have.
    Message m = std::move(subs.front());
    subs.clear();
    --counter(virtual_in_flight_, m.protocol);
    --in_transit_;
    ++stats_.flushed_single;
    flushing_ = true;
    net_.send(std::move(m));
    flushing_ = false;
    return;
  }

  const bool inter = !net_.topology().same_cluster(src, dst);
  std::size_t separate_bytes = 0;
  for (const Message& s : subs) {
    ++counter(absorbed_by_protocol_, s.protocol);
    if (inter) ++counter(inter_absorbed_, s.protocol);
    separate_bytes += s.wire_size();
    ++stats_.absorbed;
  }
  Message frame;
  frame.src = src;
  frame.dst = dst;
  frame.protocol = protocol_;
  frame.type = kFrameType;
  // Splice, don't re-encode: each sub-payload is already encoded bytes;
  // the frame Writer copies those spans once into a pooled block (plus the
  // per-sub header), which then rides the datagram zero-copy.
  std::size_t reserve = 2;
  for (const Message& s : subs) reserve += 8 + s.payload.size();
  wire::Writer w(net_.payload_pool(), reserve);
  w.varint(subs.size());
  for (const Message& s : subs) {
    w.varint(s.protocol);
    w.u16(s.type);
    w.bytes(s.payload);
  }
  frame.payload = w.take_payload();
#ifdef GRIDMUTEX_WIRE_AUDIT
  GMX_ASSERT_MSG(frame.payload == encode(subs),
                 "batch: spliced frame diverged from the reference encode");
#endif
  if (frame.wire_size() < separate_bytes)
    stats_.bytes_saved += separate_bytes - frame.wire_size();
  ++stats_.frames;
  subs.clear();  // drop the sub payload handles now that the frame owns a copy
  flushing_ = true;
  net_.send(std::move(frame));
  flushing_ = false;
  // The virtual in-flight counts stay raised until on_frame() unpacks at
  // the destination: in between, the subs exist only inside the frame.
}

void BatchMux::on_frame(const Message& frame) {
  // Validating pre-pass: walk the frame once, recording where each
  // sub-message body lives. All WireError throws happen here, before any
  // sub-message is dispatched (same all-or-nothing semantics as decode()).
  const std::span<const std::uint8_t> bytes = frame.payload.span();
  wire::Reader r(bytes);
  const std::uint64_t count = r.varint();
  if (count == 0 || count > r.remaining())
    throw wire::WireError("batch: implausible sub-message count");
  scratch_.clear();
  scratch_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t proto = r.varint();
    if (proto == 0 || proto > 0xFFFFFFFFULL)
      throw wire::WireError("batch: sub-message protocol id out of range");
    const std::uint16_t type = r.u16();
    if (type == Message::kAckType)
      throw wire::WireError("batch: ACK inside a batch frame");
    const std::span<const std::uint8_t> body = r.bytes_view();
    scratch_.push_back(SubRef{ProtocolId(proto), type,
                              std::uint32_t(body.data() - bytes.data()),
                              std::uint32_t(body.size())});
  }
  r.expect_end();

  // In-place unbatching: each sub-message's payload is a slice sharing the
  // frame's block — no per-sub copy.
  for (const SubRef& s : scratch_) {
    Message m;
    m.src = frame.src;
    m.dst = frame.dst;
    m.protocol = s.protocol;
    m.type = s.type;
    m.payload = frame.payload.slice(s.off, s.len);
    GMX_ASSERT_MSG(read_counter(virtual_in_flight_, m.protocol) > 0,
                   "batched sub-message was never absorbed");
    --virtual_in_flight_[m.protocol];
    --in_transit_;
    net_.dispatch_local(m);
  }
}

std::vector<std::uint8_t> BatchMux::encode(std::span<const Message> subs) {
  wire::Writer w;
  w.varint(subs.size());
  for (const Message& s : subs) {
    w.varint(s.protocol);
    w.u16(s.type);
    w.bytes(s.payload);
  }
  return w.take();
}

std::vector<Message> BatchMux::decode(NodeId src, NodeId dst,
                                      std::span<const std::uint8_t> payload) {
  wire::Reader r(payload);
  const std::uint64_t count = r.varint();
  // Each sub-message costs at least 4 bytes (protocol + type + length), so
  // a count beyond the remaining bytes is garbage — reject before
  // reserving memory for it.
  if (count == 0 || count > r.remaining())
    throw wire::WireError("batch: implausible sub-message count");
  std::vector<Message> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Message m;
    m.src = src;
    m.dst = dst;
    const std::uint64_t proto = r.varint();
    if (proto == 0 || proto > 0xFFFFFFFFULL)
      throw wire::WireError("batch: sub-message protocol id out of range");
    m.protocol = ProtocolId(proto);
    m.type = r.u16();
    if (m.type == Message::kAckType)
      throw wire::WireError("batch: ACK inside a batch frame");
    const std::span<const std::uint8_t> body = r.bytes_view();
    m.payload.assign(body.begin(), body.end());
    out.push_back(std::move(m));
  }
  r.expect_end();
  return out;
}

}  // namespace gmx
