#include "gridmutex/service/lease.hpp"

#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

// ---- wire schemas ----

void LeaseManager::Renew::encode(wire::Writer& w) const {
  w.varint(lock);
  w.varint(node);
  w.varint(fence);
}

LeaseManager::Renew LeaseManager::Renew::decode(wire::Reader& r) {
  Renew m;
  m.lock = r.varint();
  m.node = r.varint();
  m.fence = r.varint();
  return m;
}

void LeaseManager::Revoke::encode(wire::Writer& w) const {
  w.varint(lock);
  w.varint(fence);
}

LeaseManager::Revoke LeaseManager::Revoke::decode(wire::Reader& r) {
  Revoke m;
  m.lock = r.varint();
  m.fence = r.varint();
  return m;
}

void LeaseManager::LoadReport::encode(wire::Writer& w) const {
  w.varint(lock);
  w.varint(node);
  w.varint(count);
}

LeaseManager::LoadReport LeaseManager::LoadReport::decode(wire::Reader& r) {
  LoadReport m;
  m.lock = r.varint();
  m.node = r.varint();
  m.count = r.varint();
  return m;
}

// ---- manager ----

LeaseManager::LeaseManager(Network& net, ProtocolId protocol, LeaseConfig cfg,
                           std::vector<NodeId> authority_of_lock,
                           std::function<ClientSession*(NodeId)> resolve)
    : net_(net),
      sim_(net.simulator()),
      protocol_(protocol),
      cfg_(cfg),
      authority_of_lock_(std::move(authority_of_lock)),
      resolve_(std::move(resolve)),
      fence_counter_(authority_of_lock_.size(), 0),
      auth_(authority_of_lock_.size()) {
  GMX_ASSERT_MSG(!authority_of_lock_.empty(), "a lease table needs locks");
  GMX_ASSERT(resolve_ != nullptr);
  for (NodeId n = 0; n < net_.topology().node_count(); ++n) {
    net_.attach(n, protocol_,
                [this, n](const Message& msg) { on_message(n, msg); });
  }
}

LeaseManager::~LeaseManager() {
  for (NodeId n = 0; n < net_.topology().node_count(); ++n)
    net_.detach(n, protocol_);
}

std::uint64_t LeaseManager::grant(ClientSession& session, LockId lock) {
  GMX_ASSERT(lock < fence_counter_.size());
  const std::uint64_t fence = ++fence_counter_[lock];
  ++stats_.grants;
  if (hooks_.on_grant) hooks_.on_grant(lock, fence);
  Holder& h = holders_[holder_key(session.node(), lock)];
  h.fence = fence;
  // Authority registration rides the grant itself (the same modeling
  // shortcut as released(): the token arriving IS the notification), so a
  // holder that dies before its first renewal lands is still revocable.
  // Only the ongoing renewals and the revoke are loss-subject datagrams.
  Auth& a = auth_[lock];
  a.holder = session.node();
  a.fence = fence;
  a.last_renewal = sim_.now();
  if (a.ttl_timer == kInvalidEventId) arm_ttl(lock, sim_.now() + cfg_.ttl);
  send_renew(session.node(), lock);
  schedule_renew(session.node(), lock);
  return fence;
}

void LeaseManager::released(NodeId node, LockId lock, std::uint64_t fence,
                            bool voluntary) {
  auto it = holders_.find(holder_key(node, lock));
  if (it != holders_.end()) {
    if (it->second.renew_timer != kInvalidEventId)
      sim_.cancel(it->second.renew_timer);
    holders_.erase(it);
  }
  // Authority-side bookkeeping. Modeling shortcut: the release notification
  // rides the lock transfer itself (the token leaving the node IS the
  // release), so the authority's grant table updates without an extra
  // datagram — renewals and revokes remain the only lease traffic subject
  // to loss.
  Auth& a = auth_[lock];
  if (a.fence == fence && a.holder != kInvalidNode) {
    a.holder = kInvalidNode;
    if (a.drain_timer != kInvalidEventId) {
      sim_.cancel(a.drain_timer);
      a.drain_timer = kInvalidEventId;
    }
  }
  if (hooks_.on_release) hooks_.on_release(lock, fence, voluntary);
  // The epoch stays open across the involuntary release it legitimizes and
  // closes right after it; a voluntary release inside the drain window
  // resolves the revocation the graceful way.
  if (a.revoking && a.fence == fence) close_epoch(lock);
}

void LeaseManager::report_reject(NodeId node, LockId lock,
                                 AcquireOutcome outcome) {
  GMX_ASSERT(outcome == AcquireOutcome::kShed ||
             outcome == AcquireOutcome::kCancelled);
  wire::Writer w(net_.payload_pool(), 16);
  LoadReport{lock, node, 1}.encode(w);
  send(node, authority_of_lock_[lock],
       outcome == AcquireOutcome::kShed ? kShedType : kCancelType,
       std::move(w));
}

void LeaseManager::client_died(NodeId node) {
  for (auto it = holders_.begin(); it != holders_.end();) {
    if (NodeId(it->first >> 32) == node) {
      if (it->second.renew_timer != kInvalidEventId)
        sim_.cancel(it->second.renew_timer);
      it = holders_.erase(it);
    } else {
      ++it;
    }
  }
}

void LeaseManager::send_renew(NodeId node, LockId lock) {
  auto it = holders_.find(holder_key(node, lock));
  if (it == holders_.end()) return;
  ++stats_.renews_sent;
  wire::Writer w(net_.payload_pool(), 16);
  Renew{lock, node, it->second.fence}.encode(w);
  send(node, authority_of_lock_[lock], kRenewType, std::move(w));
}

void LeaseManager::schedule_renew(NodeId node, LockId lock) {
  auto it = holders_.find(holder_key(node, lock));
  if (it == holders_.end()) return;
  it->second.renew_timer =
      sim_.schedule_after(cfg_.renew_interval, [this, node, lock] {
        auto h = holders_.find(holder_key(node, lock));
        if (h == holders_.end()) return;  // released meanwhile
        h->second.renew_timer = kInvalidEventId;
        send_renew(node, lock);
        schedule_renew(node, lock);
      });
}

void LeaseManager::send(NodeId src, NodeId dst, std::uint16_t type,
                        wire::Writer w) {
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.protocol = protocol_;
  msg.type = type;
  msg.payload = w.take_payload();
  net_.send(std::move(msg));
}

void LeaseManager::on_message(NodeId at, const Message& msg) {
  wire::Reader r(msg.payload.span());
  switch (msg.type) {
    case kRenewType: {
      const Renew m = Renew::decode(r);
      r.expect_end();
      GMX_ASSERT(m.lock < auth_.size());
      GMX_ASSERT_MSG(authority_of_lock_[m.lock] == at,
                     "lease renewal delivered to the wrong authority");
      Auth& a = auth_[m.lock];
      if (m.fence < a.fence) return;  // stale holder's late renewal
      ++stats_.renews_received;
      a.holder = NodeId(m.node);
      a.fence = m.fence;
      a.last_renewal = sim_.now();
      // A renewal landing inside the drain window rescinds the revocation:
      // the lease is alive after all (healed partition, late delivery).
      if (a.revoking) {
        if (a.drain_timer != kInvalidEventId) {
          sim_.cancel(a.drain_timer);
          a.drain_timer = kInvalidEventId;
        }
        close_epoch(m.lock);
      }
      if (a.ttl_timer == kInvalidEventId)
        arm_ttl(LockId(m.lock), sim_.now() + cfg_.ttl);
      return;
    }
    case kRevokeType: {
      const Revoke m = Revoke::decode(r);
      r.expect_end();
      ClientSession* s = resolve_(at);
      if (s == nullptr || s->down()) return;
      if (!s->holding(LockId(m.lock)) ||
          s->current_fence(LockId(m.lock)) != m.fence)
        return;  // already released / re-granted: stale revoke
      ++stats_.drain_releases;
      s->force_release(LockId(m.lock));
      return;
    }
    case kCancelType:
    case kShedType: {
      const LoadReport m = LoadReport::decode(r);
      r.expect_end();
      GMX_ASSERT(m.lock < auth_.size());
      Auth& a = auth_[m.lock];
      if (msg.type == kShedType) {
        a.shed_reports += m.count;
        stats_.shed_reports += m.count;
      } else {
        a.cancel_reports += m.count;
        stats_.cancel_reports += m.count;
      }
      return;
    }
    default:
      GMX_ASSERT_MSG(false, "unknown lease message type");
  }
}

void LeaseManager::arm_ttl(LockId lock, SimTime at) {
  Auth& a = auth_[lock];
  a.ttl_timer = sim_.schedule_at(at, [this, lock] { check_ttl(lock); });
}

void LeaseManager::check_ttl(LockId lock) {
  Auth& a = auth_[lock];
  a.ttl_timer = kInvalidEventId;
  if (a.holder == kInvalidNode || a.revoking) return;
  const SimTime due = a.last_renewal + cfg_.ttl;
  if (sim_.now() < due) {
    arm_ttl(lock, due);  // renewed since; re-arm at the fresh expiry
    return;
  }
  start_revocation(lock);
}

void LeaseManager::start_revocation(LockId lock) {
  Auth& a = auth_[lock];
  ++stats_.revocations;
  a.revoking = true;
  if (hooks_.on_revocation) hooks_.on_revocation(lock, true);
  wire::Writer w(net_.payload_pool(), 16);
  Revoke{lock, a.fence}.encode(w);
  send(authority_of_lock_[lock], a.holder, kRevokeType, std::move(w));
  const std::uint64_t fence = a.fence;
  a.drain_timer = sim_.schedule_after(
      cfg_.drain, [this, lock, fence] { drain_expired(lock, fence); });
}

void LeaseManager::drain_expired(LockId lock, std::uint64_t fence) {
  Auth& a = auth_[lock];
  a.drain_timer = kInvalidEventId;
  if (!a.revoking || a.fence != fence || a.holder == kInvalidNode)
    return;  // resolved inside the drain window
  ClientSession* s = resolve_(a.holder);
  GMX_ASSERT_MSG(s != nullptr, "lease holder is not a session node");
  ++stats_.forced_releases;
  if (s->holding(lock) && s->current_fence(lock) == fence) {
    // Fences out the unresponsive holder; released() closes the epoch.
    s->force_release(lock);
  } else {
    // The session lost the hold without the authority's table hearing of
    // it (e.g. crashed mid-release). Nothing to release; just resolve.
    a.holder = kInvalidNode;
    close_epoch(lock);
  }
}

void LeaseManager::close_epoch(LockId lock) {
  Auth& a = auth_[lock];
  GMX_ASSERT(a.revoking);
  a.revoking = false;
  if (hooks_.on_revocation) hooks_.on_revocation(lock, false);
}

std::uint64_t LeaseManager::fence_of(LockId lock) const {
  GMX_ASSERT(lock < fence_counter_.size());
  return fence_counter_[lock];
}

bool LeaseManager::revoking(LockId lock) const {
  GMX_ASSERT(lock < auth_.size());
  return auth_[lock].revoking;
}

std::uint64_t LeaseManager::shed_reports_for(LockId lock) const {
  GMX_ASSERT(lock < auth_.size());
  return auth_[lock].shed_reports;
}

std::uint64_t LeaseManager::cancel_reports_for(LockId lock) const {
  GMX_ASSERT(lock < auth_.size());
  return auth_[lock].cancel_reports;
}

std::string LeaseManager::trace_label(ProtocolId p,
                                      std::uint16_t type) const {
  if (p != protocol_) return {};
  switch (type) {
    case kRenewType: return "svc.LEASE_RENEW";
    case kRevokeType: return "svc.REVOKE";
    case kCancelType: return "svc.CANCEL";
    case kShedType: return "svc.SHED";
    default: return "svc.LEASE?";
  }
}

}  // namespace gmx
