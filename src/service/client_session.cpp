#include "gridmutex/service/client_session.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

std::string_view to_string(AcquireOutcome o) {
  switch (o) {
    case AcquireOutcome::kGranted: return "granted";
    case AcquireOutcome::kDeadlineExpired: return "deadline-expired";
    case AcquireOutcome::kCancelled: return "cancelled";
    case AcquireOutcome::kShed: return "shed";
    case AcquireOutcome::kSessionDown: return "session-down";
  }
  return "?";
}

std::string_view to_string(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kRejectNewest: return "reject-newest";
    case ShedPolicy::kRejectByDeadline: return "reject-by-deadline";
  }
  return "?";
}

void ClientSession::add_lock(LockId lock, MutexEndpoint& endpoint) {
  GMX_ASSERT_MSG(lock == slots_.size(), "locks must be added in id order");
  GMX_ASSERT(endpoint.node() == node_);
  Slot s;
  s.endpoint = &endpoint;
  slots_.push_back(std::move(s));
}

ClientSession::Slot& ClientSession::slot(LockId lock) {
  GMX_ASSERT(lock < slots_.size());
  return slots_[lock];
}

const ClientSession::Slot& ClientSession::slot(LockId lock) const {
  GMX_ASSERT(lock < slots_.size());
  return slots_[lock];
}

void ClientSession::acquire(LockId lock, GrantCallback cb) {
  GMX_ASSERT(cb != nullptr);
  acquire(lock, AcquireOptions{},
          [cb = std::move(cb)](const AcquireResult& r) {
            // The legacy API has no failure channel; it is only legal on
            // sessions without admission bounds or crash campaigns.
            GMX_ASSERT_MSG(r.outcome == AcquireOutcome::kGranted,
                           "legacy acquire() ticket failed; use the "
                           "ticketed acquire for resilient clients");
            cb();
          });
}

TicketId ClientSession::acquire(LockId lock, AcquireOptions opts,
                                ResultCallback cb) {
  GMX_ASSERT(cb != nullptr);
  Ticket t;
  t.id = next_ticket_++;
  t.cb = std::move(cb);
  t.rel_deadline = opts.deadline;
  const TicketId id = t.id;
  if (down_) {
    complete(std::move(t), AcquireOutcome::kSessionDown);
    return id;
  }
  admit(lock, std::move(t));
  return id;
}

void ClientSession::admit(LockId lock, Ticket t) {
  Slot& s = slot(lock);
  // An already-expired deadline never reaches the algorithm: even an
  // uncontended grant crosses at least one zero-delay event, so a zero
  // budget cannot be met.
  if (t.rel_deadline && t.rel_deadline->count_ns() <= 0) {
    finish(lock, std::move(t), AcquireOutcome::kDeadlineExpired);
    return;
  }
  t.deadline_at =
      t.rel_deadline ? sim_.now() + *t.rel_deadline : SimTime::max();
  if (admission_.max_pending > 0 && s.waiting.size() >= admission_.max_pending) {
    if (admission_.policy == ShedPolicy::kRejectByDeadline) {
      // Evict the least urgent queued ticket if the newcomer beats it.
      // The requesting head is not evictable: its request is on the wire.
      const std::size_t first = s.requesting ? 1 : 0;
      std::size_t victim = s.waiting.size();
      for (std::size_t i = first; i < s.waiting.size(); ++i) {
        if (victim == s.waiting.size() ||
            s.waiting[i].deadline_at > s.waiting[victim].deadline_at)
          victim = i;
      }
      if (victim < s.waiting.size() &&
          t.deadline_at < s.waiting[victim].deadline_at) {
        Ticket evicted = std::move(s.waiting[victim]);
        s.waiting.erase(s.waiting.begin() + std::ptrdiff_t(victim));
        cancel_timer(evicted);
        enqueue(lock, std::move(t));
        finish(lock, std::move(evicted), AcquireOutcome::kShed);
        return;
      }
    }
    finish(lock, std::move(t), AcquireOutcome::kShed);
    return;
  }
  enqueue(lock, std::move(t));
}

void ClientSession::enqueue(LockId lock, Ticket t) {
  Slot& s = slot(lock);
  if (t.deadline_at != SimTime::max()) {
    t.deadline_timer = sim_.schedule_at(
        t.deadline_at, [this, lock, id = t.id] { on_deadline(lock, id); });
  }
  s.waiting.push_back(std::move(t));
  pump(s);
}

void ClientSession::pump(Slot& s) {
  if (s.requesting || s.holding || s.waiting.empty() || down_) return;
  s.requesting = true;
  s.endpoint->request_cs();
}

void ClientSession::granted(LockId lock) {
  Slot& s = slot(lock);
  GMX_ASSERT_MSG(s.requesting && !s.holding,
                 "grant without an outstanding request");
  s.requesting = false;
  if (s.abandoned || down_) {
    // The granted race: the winning ticket was withdrawn (or the client
    // died) after its request left. Nobody observes this grant — release
    // immediately so the lock moves on.
    s.abandoned = false;
    ++abandoned_grants_;
    s.endpoint->release_cs();
    pump(s);
    return;
  }
  GMX_ASSERT(!s.waiting.empty());
  Ticket t = std::move(s.waiting.front());
  s.waiting.pop_front();
  cancel_timer(t);
  s.holding = true;
  ++s.grants;
  s.fence = lease_.on_grant ? lease_.on_grant(lock) : 0;
  // Delivered synchronously: we are already inside the endpoint's deferred
  // grant event, so the caller's stack is long gone.
  t.cb(AcquireResult{AcquireOutcome::kGranted, s.fence, t.attempts});
}

bool ClientSession::cancel(LockId lock, TicketId id) {
  Slot& s = slot(lock);
  if (down_) return false;
  for (std::size_t i = 0; i < s.waiting.size(); ++i) {
    if (s.waiting[i].id != id) continue;
    if (i == 0 && s.requesting) s.abandoned = true;
    Ticket t = std::move(s.waiting[i]);
    s.waiting.erase(s.waiting.begin() + std::ptrdiff_t(i));
    cancel_timer(t);
    finish(lock, std::move(t), AcquireOutcome::kCancelled);
    return true;
  }
  // Unknown, completed, or already granted — cancelling the current holder
  // must never silently release, so it is a plain refusal.
  return false;
}

void ClientSession::on_deadline(LockId lock, TicketId id) {
  Slot& s = slot(lock);
  for (std::size_t i = 0; i < s.waiting.size(); ++i) {
    if (s.waiting[i].id != id) continue;
    if (i == 0 && s.requesting) s.abandoned = true;
    Ticket t = std::move(s.waiting[i]);
    s.waiting.erase(s.waiting.begin() + std::ptrdiff_t(i));
    t.deadline_timer = kInvalidEventId;  // this timer just fired
    finish(lock, std::move(t), AcquireOutcome::kDeadlineExpired);
    return;
  }
  // Granted or cancelled in the same instant; the timer lost the race.
}

void ClientSession::finish(LockId lock, Ticket t, AcquireOutcome outcome) {
  if (outcome == AcquireOutcome::kShed) ++sheds_;
  if (outcome == AcquireOutcome::kDeadlineExpired) ++deadline_misses_;
  if (outcome == AcquireOutcome::kCancelled) ++cancels_;
  const bool retryable = outcome == AcquireOutcome::kShed ||
                         outcome == AcquireOutcome::kDeadlineExpired;
  if (retryable && retry_.attempts > 0 && t.attempts < retry_.attempts &&
      retry_rng_ != nullptr && !down_) {
    const SimDuration delay = backoff_delay(t.attempts);
    ++t.attempts;
    ++retries_;
    sim_.schedule_after(delay, [this, lock, t = std::move(t)]() mutable {
      if (down_) {
        complete(std::move(t), AcquireOutcome::kSessionDown);
        return;
      }
      admit(lock, std::move(t));
    });
    return;
  }
  if (lease_.on_reject && (outcome == AcquireOutcome::kShed ||
                           outcome == AcquireOutcome::kCancelled)) {
    lease_.on_reject(lock, outcome);
  }
  complete(std::move(t), outcome);
}

void ClientSession::complete(Ticket t, AcquireOutcome outcome) {
  // Deferred so acquire()/cancel() callers never see their own callback
  // on the current stack (mirrors the endpoint's deferred grants).
  sim_.schedule_after(
      SimDuration::ns(0),
      [cb = std::move(t.cb),
       res = AcquireResult{outcome, 0, t.attempts}] { cb(res); });
}

SimDuration ClientSession::backoff_delay(std::uint32_t attempt) {
  double scale = retry_.base.as_sec();
  for (std::uint32_t i = 0; i < attempt; ++i) scale *= retry_.multiplier;
  scale = std::min(scale, retry_.cap.as_sec());
  if (retry_.jitter > 0.0) {
    GMX_ASSERT_MSG(retry_.jitter < 1.0, "retry jitter must be in [0, 1)");
    scale *= retry_rng_->uniform(1.0 - retry_.jitter, 1.0 + retry_.jitter);
  }
  SimDuration d = SimDuration::sec_f(scale);
  if (d.count_ns() < 1) d = SimDuration::ns(1);
  return d;
}

void ClientSession::do_release(Slot& s, LockId lock, bool voluntary) {
  s.holding = false;
  const std::uint64_t fence = s.fence;
  s.fence = 0;
  if (lease_.on_release) lease_.on_release(lock, fence, voluntary);
  s.endpoint->release_cs();
  pump(s);
}

void ClientSession::release(LockId lock) {
  Slot& s = slot(lock);
  GMX_ASSERT_MSG(s.holding, "release() without holding the lock");
  do_release(s, lock, /*voluntary=*/true);
}

bool ClientSession::release_if_current(LockId lock, std::uint64_t fence) {
  Slot& s = slot(lock);
  if (down_ || !s.holding || s.fence != fence) {
    ++stale_releases_;
    return false;
  }
  do_release(s, lock, /*voluntary=*/true);
  return true;
}

bool ClientSession::force_release(LockId lock) {
  Slot& s = slot(lock);
  if (!s.holding) return false;
  ++forced_releases_;
  // Involuntary: on a down node the release's outgoing datagrams are
  // dropped — the token is lost and PR 2's regeneration machinery mints
  // the replacement. On a live node this is a plain takeover release.
  do_release(s, lock, /*voluntary=*/false);
  return true;
}

void ClientSession::crash() {
  GMX_ASSERT_MSG(!down_, "crash() of a session that is already down");
  down_ = true;
  for (LockId l = 0; l < slots_.size(); ++l) {
    Slot& s = slots_[l];
    if (s.requesting && !s.waiting.empty()) s.abandoned = true;
    while (!s.waiting.empty()) {
      Ticket t = std::move(s.waiting.front());
      s.waiting.pop_front();
      cancel_timer(t);
      complete(std::move(t), AcquireOutcome::kSessionDown);
    }
    // Held locks stay dangling on purpose: the lease layer notices the
    // missing renewals and revokes them (or the client restarts in time
    // and resumes renewing).
  }
}

void ClientSession::restart() {
  GMX_ASSERT_MSG(down_, "restart() of a session that is up");
  down_ = false;
  for (Slot& s : slots_) pump(s);
}

void ClientSession::cancel_timer(Ticket& t) {
  if (t.deadline_timer != kInvalidEventId) {
    sim_.cancel(t.deadline_timer);
    t.deadline_timer = kInvalidEventId;
  }
}

bool ClientSession::holding(LockId lock) const { return slot(lock).holding; }

std::uint64_t ClientSession::current_fence(LockId lock) const {
  return slot(lock).fence;
}

std::size_t ClientSession::pending(LockId lock) const {
  return slot(lock).waiting.size();
}

std::uint64_t ClientSession::acquisitions(LockId lock) const {
  return slot(lock).grants;
}

bool ClientSession::idle() const {
  for (const Slot& s : slots_) {
    if (s.requesting || s.holding || !s.waiting.empty()) return false;
  }
  return true;
}

}  // namespace gmx
