#include "gridmutex/service/client_session.hpp"

#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

void ClientSession::add_lock(LockId lock, MutexEndpoint& endpoint) {
  GMX_ASSERT_MSG(lock == slots_.size(), "locks must be added in id order");
  GMX_ASSERT(endpoint.node() == node_);
  slots_.push_back(Slot{&endpoint, {}, false, false, 0});
}

ClientSession::Slot& ClientSession::slot(LockId lock) {
  GMX_ASSERT(lock < slots_.size());
  return slots_[lock];
}

const ClientSession::Slot& ClientSession::slot(LockId lock) const {
  GMX_ASSERT(lock < slots_.size());
  return slots_[lock];
}

void ClientSession::acquire(LockId lock, GrantCallback cb) {
  GMX_ASSERT(cb != nullptr);
  Slot& s = slot(lock);
  s.waiting.push_back(std::move(cb));
  pump(s);
}

void ClientSession::pump(Slot& s) {
  if (s.requesting || s.holding || s.waiting.empty()) return;
  s.requesting = true;
  s.endpoint->request_cs();
}

void ClientSession::granted(LockId lock) {
  Slot& s = slot(lock);
  GMX_ASSERT_MSG(s.requesting && !s.holding,
                 "grant without an outstanding request");
  s.requesting = false;
  s.holding = true;
  ++s.grants;
  GMX_ASSERT(!s.waiting.empty());
  GrantCallback cb = std::move(s.waiting.front());
  s.waiting.pop_front();
  cb();
}

void ClientSession::release(LockId lock) {
  Slot& s = slot(lock);
  GMX_ASSERT_MSG(s.holding, "release() without holding the lock");
  s.holding = false;
  s.endpoint->release_cs();
  pump(s);
}

bool ClientSession::holding(LockId lock) const { return slot(lock).holding; }

std::size_t ClientSession::pending(LockId lock) const {
  return slot(lock).waiting.size();
}

std::uint64_t ClientSession::acquisitions(LockId lock) const {
  return slot(lock).grants;
}

bool ClientSession::idle() const {
  for (const Slot& s : slots_) {
    if (s.requesting || s.holding || !s.waiting.empty()) return false;
  }
  return true;
}

}  // namespace gmx
