#include "gridmutex/service/experiment.hpp"

#include <cctype>
#include <memory>
#include <utility>

#include "gridmutex/analysis/protocol_checker.hpp"
#include "gridmutex/fault/failover.hpp"
#include "gridmutex/fault/injector.hpp"
#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/sim/assert.hpp"
#include "gridmutex/workload/safety_monitor.hpp"
#include "gridmutex/workload/sweep.hpp"
#include "gridmutex/workload/trace_hash.hpp"

namespace gmx {

namespace {

std::string capitalize(std::string s) {
  if (!s.empty()) s[0] = char(std::toupper(static_cast<unsigned char>(s[0])));
  return s;
}

}  // namespace

std::string ServiceConfig::label() const {
  return capitalize(intra) + "-" + capitalize(inter) +
         " K=" + std::to_string(locks);
}

ExperimentResult run_service_experiment(const ServiceConfig& cfg) {
  GMX_ASSERT(cfg.locks >= 1);
  GMX_ASSERT(cfg.open_loop.arrivals_per_sec > 0.0);

  Simulator sim;
  sim.set_event_limit(600'000'000);

  Topology topo = Composition::make_topology(cfg.clusters,
                                             cfg.apps_per_cluster);
  std::shared_ptr<const LatencyModel> latency =
      cfg.latency.build(cfg.clusters);

  Rng root(cfg.seed);
  Network net(sim, topo, latency, root.fork(1));

  TraceHasher hasher;
  if (cfg.hash_trace) hasher.install(net);

  // Churn and holder-crash axes imply the fault machinery even without an
  // explicit campaign; all of them disable batching (BATCH frames are
  // plain datagrams — no ARQ — so a faulted network dropping one would
  // lose every sub-message inside).
  const bool faulted = cfg.faults.enabled || cfg.churn.crashes > 0 ||
                       !cfg.holder_crashes.empty();
  const bool batching = cfg.batching && !faulted;

  LockService svc(net, LockServiceConfig{
                           .locks = cfg.locks,
                           .lock_names = cfg.lock_names,
                           .intra_algorithm = cfg.intra,
                           .inter_algorithm = cfg.inter,
                           .placement = cfg.placement,
                           .batching = batching,
                           .seed = root.fork(2).next_u64(),
                           .resilience = cfg.resilience,
                       });

  // The documented layout must match what the service actually reserved —
  // fault plans and tests predict protocol ids through ServiceConfig.
  GMX_ASSERT(svc.batch_protocol() == ServiceConfig::kBatchProtocol);
  for (LockId l = 0; l < cfg.locks; ++l) {
    GMX_ASSERT(svc.protocol_base(l) ==
               ServiceConfig::lock_protocol_base(l, cfg.clusters));
  }
  if (cfg.resilience.leases) {
    GMX_ASSERT(svc.lease_protocol() ==
               ServiceConfig::lease_protocol(cfg.locks, cfg.clusters));
  }

  const std::vector<NodeId>& apps = svc.app_nodes();

  // Fault campaign wiring mirrors run_experiment, fanned out per lock.
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<TokenRecoveryManager> recovery;
  std::vector<std::unique_ptr<CoordinatorFailover>> failovers;
  if (faulted) {
    // Compile the churn axis into declarative client-crash entries,
    // round-robin over the app nodes so the damage spreads across
    // clusters the way real grid churn does.
    FaultPlan plan = cfg.faults.plan;
    for (std::uint32_t i = 0; i < cfg.churn.crashes; ++i) {
      const NodeId node = apps[i % apps.size()];
      const SimTime at =
          SimTime::zero() + cfg.churn.first + cfg.churn.every * std::int64_t(i);
      const SimTime restart = cfg.churn.down.count_ns() > 0
                                  ? at + cfg.churn.down
                                  : SimTime::max();
      plan.client_crash(node, at, restart);
    }
    injector = std::make_unique<FaultInjector>(net, std::move(plan));
    // Client churn reaches the service layer through the client hook:
    // queued tickets fail with kSessionDown, held locks dangle until the
    // lease layer revokes them (or the run stalls — the negative control).
    std::vector<char> is_app(topo.node_count(), 0);
    for (const NodeId v : apps) is_app[v] = 1;
    injector->add_client_hook(
        [&svc, is_app = std::move(is_app)](NodeId node, bool up) {
          if (!is_app[node]) return;
          ClientSession& s = svc.session(node);
          if (up != s.down()) return;
          if (up) {
            s.restart();
          } else {
            s.crash();
            // A dead process forgets its holds: stop its renewal streams
            // so the authority's TTL — not a zombie timer — decides.
            if (svc.leases() != nullptr) svc.leases()->client_died(node);
          }
        });
    if (cfg.faults.recovery) {
      const RecoveryConfig& rc = cfg.faults.recovery_cfg;
      recovery = std::make_unique<TokenRecoveryManager>(net, rc);
      for (LockId l = 0; l < cfg.locks; ++l) {
        Composition& comp = svc.composition(l);
        const std::string tag = "lock[" + std::to_string(l) + "].";
        if (rc.enable_retransmit) {
          net.set_reliable(comp.inter_protocol(), rc.retransmit);
          for (ClusterId c = 0; c < comp.cluster_count(); ++c)
            net.set_reliable(comp.intra_protocol(c), rc.retransmit);
        }
        if (is_token_based(cfg.inter)) {
          recovery->watch_instance(tag + "inter", comp.inter_protocol(),
                                   comp.inter_instance());
        }
        if (is_token_based(cfg.intra)) {
          for (ClusterId c = 0; c < comp.cluster_count(); ++c) {
            recovery->watch_instance(
                tag + "intra[" + std::to_string(c) + "]",
                comp.intra_protocol(c), comp.intra_instance(c));
          }
        }
        failovers.push_back(
            std::make_unique<CoordinatorFailover>(comp, *injector));
      }
    }
    injector->arm();
    // Crash-while-holding resolves its victim at fire time: whichever
    // session holds the lock at that instant dies (nobody holding = no-op).
    for (const ServiceConfig::HolderCrashSpec& h : cfg.holder_crashes) {
      GMX_ASSERT(h.lock < cfg.locks);
      sim.schedule_at(SimTime::zero() + h.at, [&sim, &svc, &injector, &apps,
                                               h] {
        for (const NodeId v : apps) {
          ClientSession& s = svc.session(v);
          if (s.down() || !s.holding(h.lock)) continue;
          const SimTime restart = h.down.count_ns() > 0
                                      ? sim.now() + h.down
                                      : SimTime::max();
          injector->inject_client_crash(v, restart);
          return;
        }
      });
    }
  }

  // Checker declared after the world it watches (its hooks uninstall
  // first). One attachment per lock keeps every invariant lock-scoped.
  std::unique_ptr<ProtocolChecker> checker;
  if (cfg.check_protocol) {
    checker = std::make_unique<ProtocolChecker>(
        sim, CheckerOptions{.grant_bound = cfg.grant_bound,
                            .abort_on_violation = true});
    checker->attach_network(net);
    for (LockId l = 0; l < cfg.locks; ++l) {
      checker->attach_composition(svc.composition(l),
                                  "lock[" + std::to_string(l) + "].");
    }
    if (recovery) {
      const RecoveryConfig& rc = cfg.faults.recovery_cfg;
      const SimDuration grace =
          rc.detect_timeout + rc.probe_interval * 6 + rc.election_delay;
      for (LockId l = 0; l < cfg.locks; ++l) {
        Composition& comp = svc.composition(l);
        if (is_token_based(cfg.inter))
          checker->enable_recovery(comp.inter_protocol(), grace);
        if (is_token_based(cfg.intra))
          for (ClusterId c = 0; c < comp.cluster_count(); ++c)
            checker->enable_recovery(comp.intra_protocol(c), grace);
      }
      recovery->set_epoch_hook([ck = checker.get()](ProtocolId p, bool open) {
        ck->note_regeneration(p, open);
      });
    }
  }

  svc.start();

  // Materialize the whole arrival trace from its own Rng stream: arrival
  // times, requesting nodes and lock choices never depend on how the
  // service behaves, which is what "open loop" means. The materialization
  // itself lives in workload/open_loop.cpp because the real-socket
  // cross-validation campaign (transport/campaign.hpp) replays the same
  // trace from the same fork(3) stream — sim and real runs must draw the
  // bit-identical arrival sequence from one seed.
  const ZipfSampler zipf(cfg.locks, cfg.open_loop.zipf_s);
  GMX_ASSERT(cfg.flash.factor > 0.0);
  Rng traffic = root.fork(3);
  const std::vector<OpenLoopArrival> arrivals = materialize_open_loop(
      cfg.open_loop, apps, zipf, traffic,
      OpenLoopFlash{.factor = cfg.flash.factor,
                    .from_sec = cfg.flash.from.as_sec(),
                    .until_sec = cfg.flash.until.as_sec()});

  // Per-lock accounting + per-lock exclusion monitors (holding two
  // *different* locks at once is legal; two holders of one lock abort).
  struct LockAccount {
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    std::uint64_t sheds = 0;        // arrivals resolved kShed
    std::uint64_t revocations = 0;  // revocation epochs opened
    DurationStats obtaining;
    Histogram obtaining_hist{10'000.0, 200};
    SafetyMonitor safety;
    // Current experiment-level occupant, so an involuntary release (lease
    // revocation / crash-while-holding) can close the safety window at the
    // instant the hold actually ends, not when the hold timer fires.
    bool in_cs = false;
    int cur_node = -1;
    std::uint64_t cur_fence = 0;
  };
  std::vector<LockAccount> accounts(cfg.locks);
  std::uint64_t outstanding = 0;
  std::uint64_t cs_under_faults = 0;
  std::uint64_t cs_interrupted = 0;

  // Lease observation channel: feeds the checker's fencing/revocation
  // rules and lets an involuntary release exit the safety monitor for the
  // evicted holder before the replacement grant can enter it.
  std::vector<std::string> domain_names;
  if (svc.leases() != nullptr) {
    domain_names.reserve(cfg.locks);
    for (LockId l = 0; l < cfg.locks; ++l)
      domain_names.push_back("lock[" + std::to_string(l) + "]");
    if (checker) {
      for (const std::string& name : domain_names)
        checker->attach_lease_domain(name);
    }
    svc.leases()->set_hooks(LeaseManager::Hooks{
        .on_grant =
            [&](LockId l, std::uint64_t fence) {
              if (checker) checker->report_lease_grant(domain_names[l], fence);
            },
        .on_release =
            [&](LockId l, std::uint64_t fence, bool voluntary) {
              if (checker)
                checker->report_lease_release(domain_names[l], fence,
                                              voluntary);
              if (voluntary) return;
              LockAccount& acct = accounts[l];
              if (acct.in_cs && acct.cur_fence == fence) {
                acct.safety.exit(int(l), acct.cur_node);
                acct.in_cs = false;
              }
            },
        .on_revocation =
            [&](LockId l, bool open) {
              if (checker) checker->note_revocation(domain_names[l], open);
              if (open) ++accounts[l].revocations;
            },
    });
  }

  const bool leases = cfg.resilience.leases;
  const AcquireOptions acquire_opts{.deadline =
                                        cfg.resilience.default_deadline};
  for (const OpenLoopArrival& a : arrivals) {
    ++accounts[a.lock].arrivals;
    ++outstanding;
    sim.schedule_at(a.at, [&, a] {
      svc.session(a.node).acquire(a.lock, acquire_opts, [&,
                                                         a](AcquireResult r) {
        LockAccount& acct = accounts[a.lock];
        if (r.outcome != AcquireOutcome::kGranted) {
          // Arrival resolved without a CS: shed, deadline miss, or the
          // client died while queued. Each resolves exactly once.
          if (r.outcome == AcquireOutcome::kShed) ++acct.sheds;
          --outstanding;
          return;
        }
        const SimTime granted = sim.now();
        const SimDuration obtained = granted - a.at;
        acct.obtaining.add(obtained);
        acct.obtaining_hist.add(obtained.as_ms());
        acct.safety.enter(granted, int(a.lock), int(a.node));
        acct.in_cs = true;
        acct.cur_node = int(a.node);
        acct.cur_fence = r.fence;
        if (injector && injector->active_faults() > 0) ++cs_under_faults;
        sim.schedule_after(cfg.open_loop.hold, [&, a,
                                                fence = r.fence] {
          LockAccount& end = accounts[a.lock];
          ClientSession& s = svc.session(a.node);
          // Still the undisturbed holder? With leases the fence decides
          // (a revoked grant must not be released on the next holder);
          // a crashed-while-holding client waits for the lease layer.
          const bool current = end.in_cs && end.cur_node == int(a.node) &&
                               (!leases || end.cur_fence == fence) &&
                               !s.down();
          if (current) {
            end.safety.exit(int(a.lock), int(a.node));
            end.in_cs = false;
            ++end.completed;
            --outstanding;
            if (leases) {
              const bool released = s.release_if_current(a.lock, fence);
              GMX_ASSERT(released);
            } else {
              s.release(a.lock);
            }
          } else {
            // The CS was cut short (revocation or client crash); the
            // safety window was / will be closed by the lease hook.
            ++cs_interrupted;
            --outstanding;
          }
        });
      });
    });
  }

  const bool bounded =
      faulted && cfg.faults.stall_horizon < SimTime::max();
  if (bounded) {
    sim.run_until(cfg.faults.stall_horizon);
  } else {
    sim.run();
  }

  const bool stalled = outstanding > 0;
  if (stalled) {
    GMX_ASSERT_MSG(bounded, "liveness failure: service did not drain");
  } else {
    GMX_ASSERT(net.in_flight() == 0);
    if (svc.batcher()) GMX_ASSERT(svc.batcher()->in_transit() == 0);
    // Client crashes can leave sessions permanently non-idle even though
    // every ticket resolved (outstanding == 0 above): a dead client keeps
    // a dangling `requesting` flag for the grant that died with its node,
    // and a live session's REQUEST swallowed by a corpse is simply gone —
    // its ticket already failed by deadline. Quiescence is only owed by
    // runs that never killed a client process.
    const bool client_churned =
        injector != nullptr && injector->stats().client_crashes > 0;
    if (!client_churned) {
      for (const NodeId v : apps) GMX_ASSERT(svc.session(v).idle());
    }
    for (const LockAccount& acct : accounts) GMX_ASSERT(acct.safety.in_cs() == 0);
  }

  ExperimentResult res;
  res.label = cfg.label();
  res.rho = cfg.open_loop.zipf_s;  // series axis of service sweeps
  res.messages = net.counters();
  res.makespan = sim.now() - SimTime::zero();
  res.events = sim.events_processed();
  res.stalled = stalled;
  res.lock_count = cfg.locks;
  res.zipf_s = cfg.open_loop.zipf_s;
  res.service_seconds = res.makespan.as_sec();

  res.per_lock.reserve(cfg.locks);
  for (LockId l = 0; l < cfg.locks; ++l) {
    LockAccount& acct = accounts[l];
    LockMetrics m;
    m.name = svc.table().name(l);
    m.home_cluster = svc.table().home_cluster(l);
    m.arrivals = acct.arrivals;
    m.completed_cs = acct.completed;
    m.obtaining = acct.obtaining;
    m.obtaining_hist = acct.obtaining_hist;
    m.protocol_msgs = svc.messages(l);
    m.inter_msgs = svc.inter_messages(l);
    m.sheds = acct.sheds;
    m.revocations = acct.revocations;
    res.total_cs += acct.completed;
    res.obtaining.merge(acct.obtaining);
    res.obtaining_hist.merge(acct.obtaining_hist);
    res.safety_entries += acct.safety.entries();
    res.safety_violations += acct.safety.violations();
    if (res.first_violation.empty() && acct.safety.first_violation())
      res.first_violation = acct.safety.first_violation()->to_string();
    res.inter_acquisitions += svc.composition(l).total_inter_acquisitions();
    res.per_lock.push_back(std::move(m));
  }
  GMX_ASSERT(res.safety_violations == 0);

  if (svc.batcher()) {
    const BatchMux::Stats& bs = svc.batcher()->stats();
    res.batched_messages = bs.absorbed;
    res.batch_frames = bs.frames;
    res.batch_bytes_saved = bs.bytes_saved;
  }
  if (checker) res.invariant_checks = checker->checks_run();
  res.cs_under_faults = cs_under_faults;
  res.cs_interrupted = cs_interrupted;
  if (injector) {
    const FaultInjector::Stats& fs = injector->stats();
    res.faults_injected = fs.crashes + fs.client_crashes + fs.partitions +
                          fs.lossy_links + fs.targeted_drops;
    res.client_crashes = fs.client_crashes;
  }
  for (const NodeId v : apps) {
    const ClientSession& s = svc.session(v);
    res.sheds += s.sheds();
    res.cancels += s.cancels();
    res.deadline_misses += s.deadline_misses();
    res.acquire_retries += s.retries();
    res.forced_releases += s.forced_releases();
    res.stale_releases += s.stale_releases();
  }
  if (svc.leases() != nullptr) {
    const LeaseManager::Stats& ls = svc.leases()->stats();
    res.lease_renewals = ls.renews_received;
    res.lease_revocations = ls.revocations;
  }
  if (recovery) {
    const TokenRecoveryManager::Stats& rs = recovery->stats();
    res.token_losses = rs.losses_detected;
    res.token_regenerations = rs.regenerations;
    res.stranded_repairs = rs.stranded_repairs;
    res.false_alarms = rs.false_alarms;
    res.recovery_latency = rs.recovery_latency;
  }
  for (const auto& f : failovers)
    res.coordinator_failovers += f->stats().failovers;
  if (cfg.hash_trace) res.trace_hash = hasher.value();
  return res;
}

ExperimentResult run_service_replicated(ServiceConfig cfg, int repetitions) {
  GMX_ASSERT(repetitions >= 1);
  ExperimentResult merged = run_service_experiment(cfg);
  for (int r = 1; r < repetitions; ++r) {
    cfg.seed += 1;
    merged.merge(run_service_experiment(cfg));
  }
  return merged;
}

std::vector<ExperimentResult> run_service_sweep(
    std::span<const ServiceConfig> configs, int repetitions,
    std::size_t jobs) {
  const SweepRunner runner(jobs);
  return runner.run_merged(configs.size(), repetitions,
                           [&](std::size_t c, int r) {
                             ServiceConfig cfg = configs[c];
                             cfg.seed += std::uint64_t(r);
                             return run_service_experiment(cfg);
                           });
}

}  // namespace gmx
