#include "gridmutex/service/lock_table.hpp"

#include <stdexcept>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

Placement parse_placement(std::string_view name) {
  if (name == "roundrobin" || name == "rr") return Placement::kRoundRobin;
  if (name == "hash") return Placement::kHash;
  throw std::invalid_argument("unknown placement policy: \"" +
                              std::string(name) +
                              "\" (expected roundrobin or hash)");
}

std::string_view to_string(Placement p) {
  switch (p) {
    case Placement::kRoundRobin:
      return "roundrobin";
    case Placement::kHash:
      return "hash";
  }
  return "?";
}

LockTable::LockTable(std::uint32_t clusters, Placement placement,
                     std::vector<std::string> names)
    : placement_(placement), names_(std::move(names)) {
  GMX_ASSERT(clusters > 0);
  GMX_ASSERT_MSG(!names_.empty(), "a lock table needs at least one lock");
  home_.reserve(names_.size());
  for (LockId l = 0; l < names_.size(); ++l) {
    home_.push_back(placement_ == Placement::kRoundRobin
                        ? ClusterId(l % clusters)
                        : hash_cluster(names_[l], clusters));
  }
}

const std::string& LockTable::name(LockId lock) const {
  GMX_ASSERT(lock < names_.size());
  return names_[lock];
}

ClusterId LockTable::home_cluster(LockId lock) const {
  GMX_ASSERT(lock < home_.size());
  return home_[lock];
}

ClusterId LockTable::hash_cluster(std::string_view name,
                                  std::uint32_t clusters) {
  GMX_ASSERT(clusters > 0);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : name) {
    h ^= std::uint8_t(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return ClusterId(h % clusters);
}

}  // namespace gmx
