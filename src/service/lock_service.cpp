#include "gridmutex/service/lock_service.hpp"

#include <utility>

#include "gridmutex/sim/assert.hpp"
#include "gridmutex/sim/random.hpp"

namespace gmx {

namespace {

std::vector<std::string> default_names(std::uint32_t locks) {
  std::vector<std::string> names;
  names.reserve(locks);
  for (std::uint32_t l = 0; l < locks; ++l)
    names.push_back("lock" + std::to_string(l));
  return names;
}

}  // namespace

LockService::LockService(Network& net, LockServiceConfig cfg)
    : net_(net),
      cfg_(std::move(cfg)),
      table_(net.topology().cluster_count(), cfg_.placement,
             cfg_.lock_names.empty() ? default_names(cfg_.locks)
                                     : cfg_.lock_names) {
  GMX_ASSERT_MSG(cfg_.locks >= 1, "a LockService hosts at least one lock");
  GMX_ASSERT_MSG(table_.lock_count() == cfg_.locks,
                 "lock_names size must match the lock count");

  // Reserve the batch protocol first so the documented layout (BATCH, then
  // per-lock blocks) holds whether or not batching is enabled.
  batch_protocol_ = net_.reserve_protocols(1);
  if (cfg_.batching) mux_ = std::make_unique<BatchMux>(net_, batch_protocol_);

  const std::uint32_t clusters = net_.topology().cluster_count();
  Rng root(cfg_.seed);
  comps_.reserve(cfg_.locks);
  for (LockId l = 0; l < cfg_.locks; ++l) {
    const ProtocolId base = net_.reserve_protocols(clusters + 1);
    comps_.push_back(std::make_unique<Composition>(
        net_, CompositionConfig{
                  .intra_algorithm = cfg_.intra_algorithm,
                  .inter_algorithm = cfg_.inter_algorithm,
                  .initial_cluster = table_.home_cluster(l),
                  .protocol_base = base,
                  .seed = root.fork(100 + l).next_u64(),
              }));
  }

  // The lease protocol is reserved AFTER every lock block so the
  // documented layout — which fault plans and pinned traces key on —
  // is untouched whether or not leases are enabled.
  if (cfg_.resilience.leases) lease_protocol_ = net_.reserve_protocols(1);

  // Derived (not drawn) from the seed: forking is free and keyed, so an
  // inert resilience config costs zero draws on the traffic streams.
  resilience_rng_ = root.fork(777);

  // One session per app node, wired to every lock's endpoint on that node.
  const std::vector<NodeId>& apps = comps_.front()->app_nodes();
  session_of_node_.assign(net_.topology().node_count(), -1);
  sessions_.reserve(apps.size());
  for (const NodeId v : apps) {
    session_of_node_[v] = int(sessions_.size());
    sessions_.push_back(std::make_unique<ClientSession>(net_.simulator(), v));
    ClientSession* s = sessions_.back().get();
    s->reserve_locks(cfg_.locks);
    s->set_admission(cfg_.resilience.admission);
    if (cfg_.resilience.retry.attempts > 0)
      s->set_retry(cfg_.resilience.retry, &resilience_rng_);
    for (LockId l = 0; l < cfg_.locks; ++l) {
      MutexEndpoint& ep = comps_[l]->app_mutex(v);
      s->add_lock(l, ep);
      ep.set_callbacks(MutexCallbacks{
          .on_granted = [s, l] { s->granted(l); },
          .on_pending = {},
      });
    }
  }

  if (cfg_.resilience.leases) {
    std::vector<NodeId> authority(cfg_.locks);
    for (LockId l = 0; l < cfg_.locks; ++l)
      authority[l] = net_.topology().first_node_of(table_.home_cluster(l));
    lease_ = std::make_unique<LeaseManager>(
        net_, lease_protocol_, cfg_.resilience.lease, std::move(authority),
        [this](NodeId n) -> ClientSession* {
          const int idx = session_of_node_[n];
          return idx < 0 ? nullptr : sessions_[std::size_t(idx)].get();
        });
    for (auto& sp : sessions_) {
      ClientSession* s = sp.get();
      s->set_lease_hooks(ClientSession::LeaseHooks{
          .on_grant = [this, s](LockId l) { return lease_->grant(*s, l); },
          .on_release =
              [this, s](LockId l, std::uint64_t fence, bool voluntary) {
                lease_->released(s->node(), l, fence, voluntary);
              },
          .on_reject =
              [this, s](LockId l, AcquireOutcome o) {
                lease_->report_reject(s->node(), l, o);
              },
      });
    }
  }
}

LockService::~LockService() = default;

void LockService::start() {
  for (auto& comp : comps_) comp->start();
}

Composition& LockService::composition(LockId lock) {
  GMX_ASSERT(lock < comps_.size());
  return *comps_[lock];
}

ClientSession& LockService::session(NodeId app_node) {
  GMX_ASSERT(app_node < session_of_node_.size());
  const int idx = session_of_node_[app_node];
  GMX_ASSERT_MSG(idx >= 0, "session() of a coordinator node");
  return *sessions_[std::size_t(idx)];
}

ProtocolId LockService::protocol_base(LockId lock) const {
  GMX_ASSERT(lock < comps_.size());
  return comps_[lock]->config().protocol_base;
}

std::uint64_t LockService::messages(LockId lock) const {
  GMX_ASSERT(lock < comps_.size());
  const ProtocolId base = comps_[lock]->config().protocol_base;
  const std::uint32_t span = net_.topology().cluster_count() + 1;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < span; ++i) {
    total += net_.sent_by_protocol(base + i);
    if (mux_) total += mux_->absorbed_for(base + i);
  }
  return total;
}

std::uint64_t LockService::inter_messages(LockId lock) const {
  GMX_ASSERT(lock < comps_.size());
  const ProtocolId base = comps_[lock]->config().protocol_base;
  const std::uint32_t span = net_.topology().cluster_count() + 1;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < span; ++i) {
    total += net_.inter_sent_by_protocol(base + i);
    if (mux_) total += mux_->inter_absorbed_for(base + i);
  }
  return total;
}

std::function<std::string(ProtocolId, std::uint16_t)>
LockService::trace_labeler() const {
  std::vector<std::function<std::string(ProtocolId, std::uint16_t)>> chain;
  chain.reserve(comps_.size());
  for (LockId l = 0; l < comps_.size(); ++l) {
    chain.push_back(
        comps_[l]->trace_labeler("lock[" + std::to_string(l) + "]."));
  }
  const ProtocolId batch = batch_protocol_;
  const LeaseManager* lease = lease_.get();
  return [chain = std::move(chain), batch,
          lease](ProtocolId p, std::uint16_t type) -> std::string {
    if (p == batch && type == BatchMux::kFrameType) return "svc.BATCH";
    if (lease != nullptr) {
      std::string label = lease->trace_label(p, type);
      if (!label.empty()) return label;
    }
    for (const auto& labeler : chain) {
      std::string label = labeler(p, type);
      if (!label.empty()) return label;
    }
    return {};
  };
}

}  // namespace gmx
