// Ablation (paper §6 extension): does a third hierarchy level help when the
// platform itself is three-tiered (clusters within sites within a WAN)?
// Compares a flat algorithm, a 2-level composition (clusters only), and a
// 3-level composition (clusters within sites) on a synthetic 3-tier grid:
// 9 leaf clusters in 3 sites, LAN 0.5 ms, metro 5 ms, WAN 40 ms.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace gmx;
  using namespace gmx::bench;
  const BenchParams p;

  const std::uint32_t apps = 6;  // per leaf cluster; N = 54
  const double N = 9.0 * apps;
  const std::vector<double> rhos = {N / 4, N / 2, N, 2 * N, 3 * N, 6 * N};

  // The 3-tier platform for the 2-level/flat runs: model sites by a
  // latency matrix where clusters 0-2 / 3-5 / 6-8 are metro-close.
  const HierarchySpec three{.arity = {apps, 3, 3},
                            .algorithms = {"naimi", "naimi", "naimi"}};
  const std::vector<SimDuration> delays = {
      SimDuration::ms_f(0.5), SimDuration::ms(5), SimDuration::ms(40)};

  std::vector<SeriesPoint> pts;
  {
    ExperimentConfig cfg;
    cfg.mode = ExperimentConfig::Mode::kMultiLevel;
    cfg.hierarchy = three;
    cfg.level_delays = delays;
    cfg.workload.cs_count = p.cs;
    append(pts, run_series("3-level", cfg, rhos, p));
  }
  {
    // 2-level: same leaf clusters, but one flat inter instance over all 9
    // coordinators (a 2-deep spec over the same 3-tier latency).
    ExperimentConfig cfg;
    cfg.mode = ExperimentConfig::Mode::kMultiLevel;
    cfg.hierarchy = HierarchySpec{.arity = {apps, 9},
                                  .algorithms = {"naimi", "naimi"}};
    // The 2-level spec sees 9 leaf groups; reuse the 3-tier distances by
    // treating sites as invisible: build delays from the 3-level spec.
    cfg.level_delays = {SimDuration::ms_f(0.5), SimDuration::ms(40)};
    cfg.workload.cs_count = p.cs;
    append(pts, run_series("2-level", cfg, rhos, p));
  }
  {
    ExperimentConfig cfg;
    cfg.mode = ExperimentConfig::Mode::kFlat;
    cfg.flat_algorithm = "naimi";
    cfg.clusters = 9;
    cfg.apps_per_cluster = apps;
    cfg.latency = LatencySpec::two_level(SimDuration::ms_f(0.5),
                                         SimDuration::ms(40), 0.05);
    cfg.workload.cs_count = p.cs;
    append(pts, run_series("flat", cfg, rhos, p));
  }

  std::cout << "Ablation — hierarchy depth on a 3-tier platform "
               "(9 clusters x " << apps << " apps in 3 sites).\n"
            << "Note: 2-level and flat runs use a pessimistic uniform-WAN "
               "view of the same platform.\n";
  print_metric_table(std::cout, "Obtaining time (ms)", pts,
                     metric_obtaining);
  print_metric_table(std::cout, "Inter-cluster messages / CS", pts,
                     metric_inter_msgs);

  std::cout << "\nChecks:\n";
  check(band_mean(pts, "2-level", 0, 1e9, metric_obtaining) <
            band_mean(pts, "flat", 0, 1e9, metric_obtaining),
        "2-level composition beats flat on obtaining time");
  check(band_mean(pts, "3-level", 0, N, metric_inter_msgs) <
            band_mean(pts, "flat", 0, N, metric_inter_msgs),
        "3-level sends fewer inter-cluster messages than flat (saturated)");
  check(band_mean(pts, "3-level", 0, 1e9, metric_obtaining) <
            band_mean(pts, "2-level", 0, 1e9, metric_obtaining),
        "3-level beats 2-level on obtaining time (site-level aggregation "
        "keeps most handovers on 5ms metro links)");
  // Note: 3-level shows slightly MORE inter-cluster messages than 2-level —
  // those extra messages are metro-local (cluster<->site coordinator inside
  // one site); the WAN round-trips they replace are what the obtaining-time
  // advantage reflects.
  return 0;
}
