// Analysis (beyond the paper): grouping granularity. N = 180 processes
// fixed, uniform 0.5/10 ms two-level latency, but carved into different
// cluster counts: few fat clusters aggregate more demand per inter
// acquisition; many thin clusters shrink the intra instances but multiply
// WAN handovers. Reports both load regimes.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace gmx;
  using namespace gmx::bench;
  const BenchParams p;
  const int cs = std::max(10, p.cs / 2);

  struct Shape {
    std::uint32_t clusters, apps;
  };
  const Shape shapes[] = {{3, 60}, {6, 30}, {9, 20}, {18, 10}, {30, 6}};

  auto run_shape = [&](Shape s, double rho) {
    ExperimentConfig cfg;
    cfg.clusters = s.clusters;
    cfg.apps_per_cluster = s.apps;
    cfg.latency = LatencySpec::two_level(SimDuration::ms_f(0.5),
                                         SimDuration::ms(10), 0.05);
    cfg.workload.cs_count = cs;
    cfg.workload.rho = rho;
    return run_replicated(cfg, p.reps);
  };

  std::cout << "Analysis — cluster granularity at fixed N=180 "
               "(Naimi-Naimi, 0.5/10ms).\n";
  double sat_few = 0, sat_many = 0, sparse_few = 0, sparse_many = 0;
  for (double rho : {90.0, 720.0}) {
    std::cout << "\n== rho = " << rho
              << (rho <= 180 ? " (saturated)" : " (sparse)") << " ==\n";
    Table t({"shape", "obtain (ms)", "sigma (ms)", "inter/CS",
             "acquisitions", "grants/acquisition"});
    for (const Shape s : shapes) {
      const auto r = run_shape(s, rho);
      const double per_acq =
          r.inter_acquisitions == 0
              ? 0.0
              : double(r.total_cs) / double(r.inter_acquisitions);
      t.add_row({std::to_string(s.clusters) + "x" + std::to_string(s.apps),
                 Table::num(r.obtaining_ms()), Table::num(r.stddev_ms()),
                 Table::num(r.inter_msgs_per_cs()),
                 std::to_string(r.inter_acquisitions),
                 Table::num(per_acq)});
      if (rho == 90.0 && s.clusters == 3) sat_few = r.obtaining_ms();
      if (rho == 90.0 && s.clusters == 30) sat_many = r.obtaining_ms();
      if (rho == 720.0 && s.clusters == 3) sparse_few = r.obtaining_ms();
      if (rho == 720.0 && s.clusters == 30) sparse_many = r.obtaining_ms();
      std::fprintf(stderr, "[cluster-shape] %ux%u rho=%.0f done\n",
                   s.clusters, s.apps, rho);
    }
    t.print(std::cout);
  }

  std::cout << "\nChecks:\n";
  check(sat_few < sat_many,
        "saturated: fewer, fatter clusters win (more grants amortized per "
        "WAN acquisition)");
  check(sparse_few < sparse_many,
        "sparse: the ordering persists (every handover between thin "
        "clusters pays WAN)");
  check(sparse_many - sparse_few < (sat_many - sat_few) / 4.0,
        "but the absolute cost of a bad granularity collapses once queues "
        "vanish — shape matters most under saturation");
  std::cout << "\n(With a uniform WAN, fewer and fatter clusters always "
               "help; real grids group by actual latency proximity, as "
               "Fig. 3's sites do.)\n";
  return 0;
}
