// Micro-benchmarks of full simulated runs (google-benchmark): wall-clock
// cost of simulating one experiment per algorithm/mode, i.e. the
// throughput of the whole stack (kernel + network + protocol).
#include <benchmark/benchmark.h>

#include "gridmutex/workload/experiment.hpp"

namespace {

using namespace gmx;

ExperimentConfig bench_cfg() {
  ExperimentConfig cfg;
  cfg.clusters = 4;
  cfg.apps_per_cluster = 5;
  cfg.latency =
      LatencySpec::two_level(SimDuration::ms_f(0.5), SimDuration::ms(10));
  cfg.workload.cs_count = 20;
  cfg.workload.rho = 40;
  return cfg;
}

void BM_FlatAlgorithmRun(benchmark::State& state,
                         const std::string& algorithm) {
  ExperimentConfig cfg = bench_cfg();
  cfg.mode = ExperimentConfig::Mode::kFlat;
  cfg.flat_algorithm = algorithm;
  std::uint64_t cs = 0, events = 0;
  for (auto _ : state) {
    cfg.seed++;
    const auto r = run_experiment(cfg);
    cs += r.total_cs;
    events += r.events;
  }
  state.SetItemsProcessed(std::int64_t(cs));
  state.counters["events/run"] =
      benchmark::Counter(double(events) / double(state.iterations()));
}
BENCHMARK_CAPTURE(BM_FlatAlgorithmRun, naimi, "naimi");
BENCHMARK_CAPTURE(BM_FlatAlgorithmRun, martin, "martin");
BENCHMARK_CAPTURE(BM_FlatAlgorithmRun, suzuki, "suzuki");
BENCHMARK_CAPTURE(BM_FlatAlgorithmRun, raymond, "raymond");
BENCHMARK_CAPTURE(BM_FlatAlgorithmRun, central, "central");
BENCHMARK_CAPTURE(BM_FlatAlgorithmRun, ricart, "ricart");

void BM_CompositionRun(benchmark::State& state, const std::string& intra,
                       const std::string& inter) {
  ExperimentConfig cfg = bench_cfg();
  cfg.intra = intra;
  cfg.inter = inter;
  std::uint64_t cs = 0;
  for (auto _ : state) {
    cfg.seed++;
    cs += run_experiment(cfg).total_cs;
  }
  state.SetItemsProcessed(std::int64_t(cs));
}
BENCHMARK_CAPTURE(BM_CompositionRun, naimi_naimi, "naimi", "naimi");
BENCHMARK_CAPTURE(BM_CompositionRun, naimi_martin, "naimi", "martin");
BENCHMARK_CAPTURE(BM_CompositionRun, naimi_suzuki, "naimi", "suzuki");
BENCHMARK_CAPTURE(BM_CompositionRun, suzuki_suzuki, "suzuki", "suzuki");

void BM_PaperScaleRun(benchmark::State& state) {
  // One full Fig. 4 point: 9x20 Grid5000, 100 CS per process.
  ExperimentConfig cfg;
  cfg.workload.cs_count = 100;
  cfg.workload.rho = 180;
  std::uint64_t cs = 0;
  for (auto _ : state) {
    cfg.seed++;
    cs += run_experiment(cfg).total_cs;
  }
  state.SetItemsProcessed(std::int64_t(cs));
}
BENCHMARK(BM_PaperScaleRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
