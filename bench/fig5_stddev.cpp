// Reproduces paper Figure 5: (a) standard deviation σ of the obtaining
// time vs ρ and (b) relative deviation σᵣ = σ/mean vs ρ, for the three
// compositions and the flat Naimi baseline.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace gmx;
  using namespace gmx::bench;
  const BenchParams p;
  const auto rhos = paper_rhos();
  const double N = 180;

  std::vector<SeriesPoint> pts;
  for (const char* inter : {"naimi", "martin", "suzuki"}) {
    ExperimentConfig cfg = paper_base(p);
    cfg.inter = inter;
    append(pts, run_series(cfg.label(), cfg, rhos, p));
  }
  {
    ExperimentConfig cfg = paper_base(p);
    cfg.mode = ExperimentConfig::Mode::kFlat;
    cfg.flat_algorithm = "naimi";
    append(pts, run_series(cfg.label(), cfg, rhos, p));
  }

  std::cout << "Figure 5 — obtaining-time variability vs rho.\n";
  print_metric_table(std::cout, "(a) standard deviation (ms)", pts,
                     metric_stddev);
  print_metric_table(std::cout, "(b) relative deviation sigma/mean", pts,
                     metric_relative_stddev, 3);

  std::cout << "\nPaper-shape checks (§4.5):\n";
  // Sigma is significant compared to the 10ms CS time everywhere.
  check(band_mean(pts, "Naimi-Naimi", 45, 1e9, metric_stddev) > 10.0,
        "sigma is large relative to the 10ms CS time (WAN heterogeneity)");
  // Relative deviation of flat Naimi below the compositions
  // (token path is location-independent).
  {
    const double flat =
        band_mean(pts, "Naimi (flat)", 45, 1e9, metric_relative_stddev);
    for (const char* s : {"Naimi-Naimi", "Naimi-Martin", "Naimi-Suzuki"}) {
      check(flat < band_mean(pts, s, 45, 1e9, metric_relative_stddev),
            std::string("flat Naimi sigma_r below ") + s);
    }
  }
  // Sigma_r grows from low rho then plateaus: compare first point vs band.
  for (const char* s : {"Naimi-Naimi", "Naimi-Martin", "Naimi-Suzuki"}) {
    check(at(pts, s, 45).relative_stddev() <
              band_mean(pts, s, 3 * N, 1e9, metric_relative_stddev),
          std::string(s) + ": sigma_r rises from the saturated regime");
  }
  // Intermediate band: Martin worst absolute sigma.
  {
    const double nm =
        band_mean(pts, "Naimi-Martin", N + 1, 3 * N, metric_stddev);
    check(nm > band_mean(pts, "Naimi-Naimi", N + 1, 3 * N, metric_stddev) &&
              nm > band_mean(pts, "Naimi-Suzuki", N + 1, 3 * N,
                             metric_stddev),
          "N<rho<=3N: Martin-inter has the worst absolute sigma");
  }
  // High parallelism: Suzuki smallest sigma.
  {
    const double ns =
        band_mean(pts, "Naimi-Suzuki", 3 * N, 1e9, metric_stddev);
    check(ns < band_mean(pts, "Naimi-Naimi", 3 * N, 1e9, metric_stddev) &&
              ns < band_mean(pts, "Naimi-Martin", 3 * N, 1e9, metric_stddev),
          "rho>=3N: Suzuki-inter has the smallest sigma");
  }
  maybe_write_csv("fig5", pts);
  return 0;
}
