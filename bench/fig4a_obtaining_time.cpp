// Reproduces paper Figure 4(a): average obtaining time of application
// processes vs ρ, for the compositions Naimi-Naimi, Naimi-Martin,
// Naimi-Suzuki and the original (flat) Naimi-Tréhel baseline, on the
// Grid5000 topology (9 clusters × 20 processes, α = 10 ms).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace gmx;
  using namespace gmx::bench;
  const BenchParams p;
  const auto rhos = paper_rhos();
  const double N = 180;

  std::vector<SeriesPoint> pts;
  for (const char* inter : {"naimi", "martin", "suzuki"}) {
    ExperimentConfig cfg = paper_base(p);
    cfg.inter = inter;
    append(pts, run_series(cfg.label(), cfg, rhos, p));
  }
  {
    ExperimentConfig cfg = paper_base(p);
    cfg.mode = ExperimentConfig::Mode::kFlat;
    cfg.flat_algorithm = "naimi";
    append(pts, run_series(cfg.label(), cfg, rhos, p));
  }

  std::cout << "Figure 4(a) — obtaining time vs rho (ms). N=" << N
            << ", alpha=10ms, " << p.cs << " CS/process, " << p.reps
            << " repetitions.\n";
  print_metric_table(std::cout, "Obtaining time (ms)", pts,
                     metric_obtaining);

  std::cout << "\nPaper-shape checks (§4.3):\n";
  // Monotone decrease with rho for every series.
  for (const char* s :
       {"Naimi-Naimi", "Naimi-Martin", "Naimi-Suzuki", "Naimi (flat)"}) {
    check(at(pts, s, 45).obtaining_ms() > at(pts, s, 1080).obtaining_ms(),
          std::string(s) + ": obtaining time decreases as rho grows");
  }
  // Low parallelism (rho<=N): the three compositions are equivalent
  // (within 10%) — T_pendCS dominates, T_token = T for all.
  {
    const double nn = band_mean(pts, "Naimi-Naimi", 45, N, metric_obtaining);
    const double nm = band_mean(pts, "Naimi-Martin", 45, N, metric_obtaining);
    const double ns = band_mean(pts, "Naimi-Suzuki", 45, N, metric_obtaining);
    const double lo = std::min({nn, nm, ns}), hi = std::max({nn, nm, ns});
    check(hi / lo < 1.10,
          "rho<=N: all three compositions within 10% of each other");
    check(band_mean(pts, "Naimi (flat)", 45, N, metric_obtaining) > hi,
          "rho<=N: compositions beat the original flat algorithm");
  }
  // Intermediate (N..3N): Naimi ≈ Suzuki, Martin slightly higher.
  {
    const double nn = band_mean(pts, "Naimi-Naimi", N + 1, 3 * N,
                                metric_obtaining);
    const double nm = band_mean(pts, "Naimi-Martin", N + 1, 3 * N,
                                metric_obtaining);
    const double ns = band_mean(pts, "Naimi-Suzuki", N + 1, 3 * N,
                                metric_obtaining);
    check(nm > nn && nm > ns,
          "N<rho<=3N: Martin-inter is the slowest of the three");
    check(std::abs(nn - ns) / std::min(nn, ns) < 0.35,
          "N<rho<=3N: Naimi-inter and Suzuki-inter comparable");
  }
  // High parallelism (rho>=3N): Suzuki lowest, Martin highest.
  {
    const double nn =
        band_mean(pts, "Naimi-Naimi", 3 * N, 1e9, metric_obtaining);
    const double nm =
        band_mean(pts, "Naimi-Martin", 3 * N, 1e9, metric_obtaining);
    const double ns =
        band_mean(pts, "Naimi-Suzuki", 3 * N, 1e9, metric_obtaining);
    check(ns < nn && nn < nm,
          "rho>=3N: Suzuki-inter < Naimi-inter < Martin-inter");
  }
  maybe_write_csv("fig4a", pts);
  return 0;
}
