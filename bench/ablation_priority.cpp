// Ablation (related work, paper §5): what request priorities buy — and
// cost — on a grid. Mueller's prioritized token algorithm vs plain
// Naimi-Tréhel, flat over the Grid5000 platform, with 10% of the processes
// marked high-priority. Reports obtaining times of the high- and
// low-priority populations separately.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "gridmutex/mutex/mueller.hpp"
#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/workload/app_process.hpp"

namespace {

using namespace gmx;

struct SplitResult {
  double high_ms = 0, low_ms = 0;
  std::uint64_t msgs = 0;
};

SplitResult run(const std::string& algorithm, double rho, int cs,
                std::uint64_t seed) {
  Simulator sim;
  sim.set_event_limit(200'000'000);
  const Topology topo = Topology::grid5000(6);  // 54 processes
  Network net(sim, topo,
              std::make_shared<MatrixLatencyModel>(
                  MatrixLatencyModel::grid5000(0.05)),
              Rng(seed));
  const std::vector<NodeId> members = [&] {
    std::vector<NodeId> m(topo.node_count());
    for (NodeId v = 0; v < topo.node_count(); ++v) m[v] = v;
    return m;
  }();

  std::vector<std::unique_ptr<MutexEndpoint>> eps;
  Rng root(seed);
  for (NodeId v = 0; v < topo.node_count(); ++v)
    eps.push_back(std::make_unique<MutexEndpoint>(
        net, 1, members, int(v), make_algorithm(algorithm), root.fork(v)));
  for (auto& ep : eps) ep->init(0);

  // Every 10th process is high priority (where the algorithm supports it).
  auto is_high = [](NodeId v) { return v % 10 == 0; };
  if (algorithm == "mueller") {
    for (auto& ep : eps) {
      if (is_high(ep->node()))
        dynamic_cast<MuellerMutex&>(ep->algorithm()).set_priority(8);
    }
  }

  WorkloadMetrics high, low;
  SafetyMonitor safety;
  WorkloadParams p;
  p.rho = rho;
  p.cs_count = cs;
  std::vector<std::unique_ptr<AppProcess>> procs;
  for (auto& ep : eps) {
    procs.push_back(std::make_unique<AppProcess>(
        sim, *ep, p, root.fork(1000 + ep->node()),
        is_high(ep->node()) ? high : low, safety));
  }
  for (auto& pr : procs) pr->start();
  sim.run();
  GMX_ASSERT(safety.violations() == 0);
  return SplitResult{high.obtaining.mean_ms(), low.obtaining.mean_ms(),
                     net.counters().sent};
}

}  // namespace

int main() {
  using namespace gmx::bench;
  const BenchParams bp;
  const int cs = std::max(10, bp.cs / 2);
  const double rhos[] = {25, 50, 110, 220};  // N = 54

  std::cout << "Ablation — request priorities (Mueller, related work §5) "
               "vs plain Naimi-Trehel. 54 processes, 10% high-priority.\n\n";
  gmx::Table t({"rho", "naimi high (ms)", "naimi low (ms)",
                "mueller high (ms)", "mueller low (ms)"});
  double contended_gain = 0;
  int contended_rows = 0;
  double worst_penalty = 0;
  for (double rho : rhos) {
    SplitResult naimi{}, mueller{};
    for (int rep = 0; rep < bp.reps; ++rep) {
      const auto a = run("naimi", rho, cs, 50 + rep);
      const auto b = run("mueller", rho, cs, 50 + rep);
      naimi.high_ms += a.high_ms / bp.reps;
      naimi.low_ms += a.low_ms / bp.reps;
      mueller.high_ms += b.high_ms / bp.reps;
      mueller.low_ms += b.low_ms / bp.reps;
    }
    t.add_row({gmx::Table::num(rho, 0), gmx::Table::num(naimi.high_ms),
               gmx::Table::num(naimi.low_ms),
               gmx::Table::num(mueller.high_ms),
               gmx::Table::num(mueller.low_ms)});
    if (rho <= 54) {  // contended band (rho <= N): priorities matter here
      contended_gain += naimi.high_ms / std::max(1e-9, mueller.high_ms);
      ++contended_rows;
    }
    worst_penalty = std::max(
        worst_penalty, mueller.low_ms / std::max(1e-9, naimi.low_ms));
    std::fprintf(stderr, "[priority] rho=%.0f done\n", rho);
  }
  t.print(std::cout);

  std::cout << "\nUnder contention (rho <= N) the priority class jumps the\n"
               "queue; at high parallelism queues are empty, priorities are\n"
               "moot, and Mueller's chase routing costs extra WAN hops —\n"
               "the same trade the Bertier baseline shows.\n";
  std::cout << "\nChecks:\n";
  check(contended_gain / contended_rows > 1.15,
        "under contention, high-priority processes obtain the CS faster "
        "under Mueller than under FIFO Naimi");
  check(worst_penalty < 3.0,
        "aging keeps the low-priority penalty bounded (no starvation)");
  return 0;
}
