// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary reproduces one table/figure of the paper (see
// DESIGN.md §4) at the paper's full scale by default: 9 clusters × 20
// application processes, Grid5000 latency matrix, α = 10 ms, 100 CS per
// process, averaged over repetitions. Environment overrides for quick runs:
//   GRIDMUTEX_REPS  repetitions per point   (default 5; paper used 10)
//   GRIDMUTEX_CS    critical sections/proc  (default 100, as the paper)
//   GRIDMUTEX_JOBS  sweep parallelism over (config, seed) replication
//                   cells (default: hardware; GRIDMUTEX_THREADS is an
//                   alias, kept for older scripts)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "gridmutex/workload/report.hpp"
#include "gridmutex/workload/runner.hpp"

namespace gmx::bench {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

struct BenchParams {
  int reps = env_int("GRIDMUTEX_REPS", 5);
  int cs = env_int("GRIDMUTEX_CS", 100);
  std::size_t threads =
      std::size_t(env_int("GRIDMUTEX_JOBS", env_int("GRIDMUTEX_THREADS", 0)));
};

/// The paper's ρ axis. N = 180: low parallelism ρ≤N, intermediate
/// N<ρ≤3N, high ρ≥3N.
inline std::vector<double> paper_rhos() {
  return {45, 90, 135, 180, 270, 360, 450, 540, 720, 900, 1080};
}

inline ExperimentConfig paper_base(const BenchParams& p) {
  ExperimentConfig cfg;  // defaults: 9×20, grid5000 latency
  cfg.workload.alpha = SimDuration::ms(10);
  cfg.workload.cs_count = p.cs;
  return cfg;
}

/// Runs one series (config template) over the ρ axis.
inline std::vector<SeriesPoint> run_series(std::string name,
                                           ExperimentConfig base,
                                           const std::vector<double>& rhos,
                                           const BenchParams& p) {
  std::fprintf(stderr, "[%s] running %zu points x %d reps...\n", name.c_str(),
               rhos.size(), p.reps);
  const auto results =
      run_rho_sweep(base, rhos,
                    SweepOptions{.threads = p.threads,
                                 .repetitions = p.reps,
                                 .progress = {}});
  std::vector<SeriesPoint> out;
  for (std::size_t i = 0; i < rhos.size(); ++i)
    out.push_back(SeriesPoint{name, rhos[i], results[i]});
  return out;
}

inline void append(std::vector<SeriesPoint>& all,
                   std::vector<SeriesPoint> more) {
  for (auto& p : more) all.push_back(std::move(p));
}

/// When GRIDMUTEX_CSV_DIR is set, dumps every point of a bench to
/// <dir>/<name>.csv for external plotting.
inline void maybe_write_csv(const std::string& name,
                            std::span<const SeriesPoint> points) {
  const char* dir = std::getenv("GRIDMUTEX_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  write_csv(out, points);
  std::fprintf(stderr, "wrote %zu points to %s\n", points.size(),
               path.c_str());
}

/// Paper-shape check output: the bench binaries verify the qualitative
/// claims of the evaluation section and print a verdict per claim.
inline void check(bool ok, const std::string& claim) {
  std::cout << (ok ? "  [ok]   " : "  [MISS] ") << claim << "\n";
}

inline const ExperimentResult& at(const std::vector<SeriesPoint>& pts,
                                  const std::string& series, double rho) {
  for (const auto& p : pts)
    if (p.series == series && p.rho == rho) return p.result;
  std::fprintf(stderr, "missing point %s@%g\n", series.c_str(), rho);
  std::abort();
}

/// Mean of a metric over the ρ values in [lo, hi].
inline double band_mean(const std::vector<SeriesPoint>& pts,
                        const std::string& series, double lo, double hi,
                        double (*metric)(const ExperimentResult&)) {
  double sum = 0;
  int n = 0;
  for (const auto& p : pts) {
    if (p.series == series && p.rho >= lo && p.rho <= hi) {
      sum += metric(p.result);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

inline double metric_obtaining(const ExperimentResult& r) {
  return r.obtaining_ms();
}
inline double metric_stddev(const ExperimentResult& r) {
  return r.stddev_ms();
}
inline double metric_relative_stddev(const ExperimentResult& r) {
  return r.relative_stddev();
}
inline double metric_inter_msgs(const ExperimentResult& r) {
  return r.inter_msgs_per_cs();
}
inline double metric_total_msgs(const ExperimentResult& r) {
  return r.total_msgs_per_cs();
}

}  // namespace gmx::bench
