// Reproduces paper Figure 3: the Grid5000 average-RTT latency matrix that
// drives every other experiment. Prints the matrix as configured in the
// simulator (ms RTT, i.e. 2× the one-way delay the network uses) and checks
// the structural properties the paper's analysis leans on.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "gridmutex/net/latency.hpp"
#include "gridmutex/net/topology.hpp"

int main() {
  using namespace gmx;
  const auto model = MatrixLatencyModel::grid5000(0.0);
  const auto names = grid5000_site_names();

  std::cout << "Figure 3 — Grid5000 RTT latencies (average ms), as "
               "configured in gridmutex\n\n";
  std::printf("%-9s", "from\\to");
  for (auto n : names) std::printf(" %8.*s", int(n.size()), n.data());
  std::printf("\n");
  for (ClusterId i = 0; i < 9; ++i) {
    std::printf("%-9.*s", int(names[i].size()), names[i].data());
    for (ClusterId j = 0; j < 9; ++j)
      std::printf(" %8.3f", 2.0 * model.one_way_ms(i, j));
    std::printf("\n");
  }

  std::cout << "\nStructural checks (paper §4.1/§4.5):\n";
  // LAN ≪ WAN: the hierarchy of communication delays.
  double max_diag = 0, min_off = 1e9;
  for (ClusterId i = 0; i < 9; ++i) {
    for (ClusterId j = 0; j < 9; ++j) {
      const double v = model.one_way_ms(i, j);
      if (i == j)
        max_diag = std::max(max_diag, v);
      else
        min_off = std::min(min_off, v);
    }
  }
  bench::check(max_diag * 10 < min_off,
               "intra-cluster latency is >10x below any inter-cluster link");
  // Non-uniform WAN (argued in §4.5 for the large σ).
  double min_wan = 1e9, max_wan = 0;
  for (ClusterId i = 0; i < 9; ++i)
    for (ClusterId j = 0; j < 9; ++j)
      if (i != j) {
        min_wan = std::min(min_wan, model.one_way_ms(i, j));
        max_wan = std::max(max_wan, model.one_way_ms(i, j));
      }
  bench::check(max_wan / min_wan > 5,
               "inter-cluster latencies are heterogeneous (>5x spread)");
  // Asymmetry is preserved from the measured table.
  bench::check(model.one_way_ms(0, 7) != model.one_way_ms(7, 0),
               "matrix preserves the measured route asymmetry");
  std::printf("\nWAN one-way spread: %.3f .. %.3f ms; worst link %s->%s\n",
              min_wan, max_wan, "nancy", "toulouse");
  return 0;
}
