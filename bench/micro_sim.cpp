// Micro-benchmarks of the simulation substrate (google-benchmark):
// event-queue operations, simulator dispatch rate, RNG, wire codec.
// These bound how much grid time a wall-clock second can simulate.
#include <benchmark/benchmark.h>

#include "gridmutex/net/wire.hpp"
#include "gridmutex/sim/event_queue.hpp"
#include "gridmutex/sim/random.hpp"
#include "gridmutex/sim/simulator.hpp"
#include "gridmutex/sim/stats.hpp"

namespace {

using namespace gmx;

void BM_EventQueuePushPop(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  EventQueue q;
  Rng rng(1);
  // Steady state: keep `depth` events pending, push one / pop one.
  for (std::int64_t i = 0; i < depth; ++i)
    q.push(SimTime::from_ns(std::int64_t(rng.next_below(1'000'000))), [] {});
  std::int64_t t = 1'000'000;
  for (auto _ : state) {
    q.push(SimTime::from_ns(t + std::int64_t(rng.next_below(10'000))), [] {});
    ++t;
    benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  // An event chain that re-schedules itself: pure kernel dispatch cost.
  Simulator sim;
  std::function<void()> tick = [&] {
    sim.schedule_after(SimDuration::us(1), tick);
  };
  sim.schedule_after(SimDuration::us(1), tick);
  for (auto _ : state) {
    sim.run_steps(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorSelfScheduling);

void BM_RngU64(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngU64);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(10.0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

void BM_OnlineStatsAdd(benchmark::State& state) {
  OnlineStats s;
  Rng rng(3);
  for (auto _ : state) s.add(rng.next_double());
  benchmark::DoNotOptimize(s.mean());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineStatsAdd);

void BM_WireEncodeSuzukiToken(benchmark::State& state) {
  // The largest message in the system: LN array + queue, size ∝ N.
  const std::int64_t n = state.range(0);
  std::vector<std::uint64_t> ln(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> q(static_cast<std::size_t>(n) / 4);
  Rng rng(5);
  for (auto& v : ln) v = rng.next_below(1000);
  for (auto& v : q) v = std::uint32_t(rng.next_below(std::uint64_t(n)));
  for (auto _ : state) {
    wire::Writer w(std::size_t(n) * 3);
    w.varint_array(std::span<const std::uint64_t>(ln));
    w.varint_array(std::span<const std::uint32_t>(q));
    benchmark::DoNotOptimize(w.view().data());
  }
  state.SetBytesProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_WireEncodeSuzukiToken)->Arg(9)->Arg(180)->Arg(1024);

void BM_WireDecodeSuzukiToken(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::vector<std::uint64_t> ln(std::size_t(n), 123);
  std::vector<std::uint32_t> q(std::size_t(n) / 4, 7);
  wire::Writer w;
  w.varint_array(std::span<const std::uint64_t>(ln));
  w.varint_array(std::span<const std::uint32_t>(q));
  for (auto _ : state) {
    wire::Reader r(w.view());
    benchmark::DoNotOptimize(r.varint_array_u64());
    benchmark::DoNotOptimize(r.varint_array_u32());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireDecodeSuzukiToken)->Arg(9)->Arg(180)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
