// Analysis (paper §4.5): *why* the composition's obtaining time varies so
// much. The paper attributes the large σ to two request populations:
//   - "short" requests, issued while the requester's cluster already holds
//     the inter token (or the token is idle locally): served at LAN speed;
//   - "long" requests, which must pull the token across the WAN.
// This bench instruments a Naimi-Naimi run to classify every critical
// section by whether the requester's coordinator was privileged at request
// time, and reports the two populations separately — making the bimodality
// (and hence Fig. 5's σ) directly visible.
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "gridmutex/core/composition.hpp"
#include "gridmutex/workload/safety_monitor.hpp"

namespace {

using namespace gmx;

struct Bimodal {
  DurationStats local, remote;  // by coordinator state at request time
  DurationStats all;
};

Bimodal run(double rho, int cs, std::uint64_t seed) {
  Simulator sim;
  sim.set_event_limit(300'000'000);
  const Topology topo = Composition::make_topology(9, 20);
  Network net(sim, topo,
              std::make_shared<MatrixLatencyModel>(
                  MatrixLatencyModel::grid5000(0.05)),
              Rng(seed));
  Composition comp(net, CompositionConfig{.seed = seed});
  comp.start();

  Bimodal out;
  SafetyMonitor safety;
  Rng root(seed);

  struct App {
    NodeId node;
    ClusterId cluster;
    int remaining;
    SimTime requested_at;
    bool was_local = false;
  };
  std::vector<App> apps;
  for (NodeId v : comp.app_nodes())
    apps.push_back(App{v, topo.cluster_of(v), cs, {}, false});

  const SimDuration alpha = SimDuration::ms(10);
  const SimDuration beta = alpha * rho;
  std::function<void(std::size_t)> think = [&](std::size_t i) {
    sim.schedule_after(root.fork(7000 + i).exponential(beta), [&, i] {
      App& a = apps[i];
      a.requested_at = sim.now();
      // Classification at request time: privileged coordinator (or the
      // token idle in-cluster) means no WAN round-trip is needed.
      a.was_local = comp.coordinator(a.cluster).cluster_privileged() ||
                    comp.coordinator(a.cluster).inter().holds_token();
      comp.app_mutex(a.node).request_cs();
    });
  };
  for (std::size_t i = 0; i < apps.size(); ++i) {
    App& a = apps[i];
    comp.app_mutex(a.node).set_callbacks(MutexCallbacks{
        [&, i] {
          App& me = apps[i];
          const SimDuration d = sim.now() - me.requested_at;
          (me.was_local ? out.local : out.remote).add(d);
          out.all.add(d);
          safety.enter();
          sim.schedule_after(alpha, [&, i] {
            safety.exit();
            comp.app_mutex(apps[i].node).release_cs();
            if (--apps[i].remaining > 0) think(i);
          });
        },
        {},
    });
    think(i);
  }
  sim.run();
  GMX_ASSERT(safety.violations() == 0);
  return out;
}

}  // namespace

int main() {
  using namespace gmx::bench;
  const BenchParams bp;
  const int cs = std::max(10, bp.cs / 2);

  std::cout << "Analysis §4.5 — bimodality of the obtaining time "
               "(Naimi-Naimi, Grid5000, 9x20).\n"
               "'local' = requester's cluster held/owned the inter token at "
               "request time.\n\n";
  gmx::Table t({"rho", "local share", "local mean (ms)", "remote mean (ms)",
                "remote/local", "overall sigma (ms)"});
  double sparse_ratio = 0, saturated_ratio = 0;
  for (double rho : {90.0, 360.0, 720.0, 1440.0}) {
    Bimodal acc;
    for (int rep = 0; rep < bp.reps; ++rep) {
      Bimodal one = run(rho, cs, 31 + rep);
      acc.local.merge(one.local);
      acc.remote.merge(one.remote);
      acc.all.merge(one.all);
    }
    const double share =
        double(acc.local.count()) /
        double(std::max<std::uint64_t>(1, acc.all.count()));
    t.add_row({gmx::Table::num(rho, 0), gmx::Table::num(share, 2),
               gmx::Table::num(acc.local.mean_ms()),
               gmx::Table::num(acc.remote.mean_ms()),
               gmx::Table::num(acc.remote.mean_ms() /
                               std::max(1e-9, acc.local.mean_ms())),
               gmx::Table::num(acc.all.stddev_ms())});
    const double ratio =
        acc.remote.mean_ms() / std::max(1e-9, acc.local.mean_ms());
    if (rho == 90.0) saturated_ratio = ratio;
    if (rho == 1440.0) sparse_ratio = ratio;
    std::fprintf(stderr, "[bimodal] rho=%.0f done\n", rho);
  }
  t.print(std::cout);

  std::cout << "\nReading: under saturation the pending-queue delay "
               "(T_pendCS) swamps both populations — exactly the paper's "
               "low-rho regime where T_req is 'completely overlapped'. The "
               "local/remote split only surfaces once queues drain: at high "
               "parallelism a remote fetch costs a WAN round-trip that a "
               "local grant never pays, which is the bimodality behind "
               "Fig. 5's sigma_r plateau.\n";
  std::cout << "\nChecks:\n";
  check(sparse_ratio > 1.5,
        "rho>=3N: remote fetches are >=1.5x slower than local grants "
        "(WAN round-trip visible)");
  check(saturated_ratio < 1.5,
        "rho<=N/2: queueing dominates — the local/remote gap vanishes "
        "(T_pendCS overlaps T_req, paper §4.3)");
  return 0;
}
