// Related-work comparison (paper §5): the composition approach vs
// Bertier et al.'s cluster-aware single-token algorithm (hierarchical
// Naimi-Tréhel with local preference) vs plain flat Naimi-Tréhel — on the
// paper's Grid5000 platform and ρ sweep.
//
// The composition paper argues its approach is "more generic" than such
// hybrid single-algorithm adaptations; this bench quantifies where each
// sits. Our Bertier variant routes requests by chasing the token along
// stale holder pointers (see mutex/bertier.hpp), so it batches locality
// well under saturation but pays long WAN request walks once demand thins
// — measured below, and a concrete argument for the paper's thesis that
// hierarchy belongs in the architecture (two instances) rather than inside
// one algorithm's grant policy.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace gmx;
  using namespace gmx::bench;
  const BenchParams p;
  const auto rhos = paper_rhos();
  const double N = 180;

  std::vector<SeriesPoint> pts;
  {
    ExperimentConfig cfg = paper_base(p);
    cfg.intra = cfg.inter = "naimi";
    append(pts, run_series("Naimi-Naimi (composition)", cfg, rhos, p));
  }
  {
    ExperimentConfig cfg = paper_base(p);
    cfg.mode = ExperimentConfig::Mode::kFlat;
    cfg.flat_algorithm = "bertier";
    append(pts, run_series("Bertier (flat, cluster-aware)", cfg, rhos, p));
  }
  {
    ExperimentConfig cfg = paper_base(p);
    cfg.mode = ExperimentConfig::Mode::kFlat;
    cfg.flat_algorithm = "naimi";
    append(pts, run_series("Naimi (flat)", cfg, rhos, p));
  }

  std::cout << "Related-work baseline — composition vs Bertier "
               "cluster-aware token vs flat Naimi.\n";
  print_metric_table(std::cout, "Obtaining time (ms)", pts,
                     metric_obtaining);
  print_metric_table(std::cout, "Inter-cluster messages / CS", pts,
                     metric_inter_msgs);

  std::cout << "\nChecks:\n";
  check(band_mean(pts, "Bertier (flat, cluster-aware)", 45, N,
                  metric_obtaining) <
            band_mean(pts, "Naimi (flat)", 45, N, metric_obtaining),
        "cluster awareness improves on flat Naimi under saturation");
  check(band_mean(pts, "Bertier (flat, cluster-aware)", 3 * N, 1e9,
                  metric_inter_msgs) >
            band_mean(pts, "Naimi (flat)", 3 * N, 1e9, metric_inter_msgs),
        "chase routing costs Bertier extra WAN messages at high "
        "parallelism (no path reversal; composition avoids this "
        "structurally)");
  check(band_mean(pts, "Naimi-Naimi (composition)", 45, N,
                  metric_inter_msgs) <
            band_mean(pts, "Bertier (flat, cluster-aware)", 45, N,
                      metric_inter_msgs),
        "the composition still sends fewer inter messages than Bertier "
        "under saturation");
  check(band_mean(pts, "Naimi-Naimi (composition)", 3 * N, 1e9,
                  metric_obtaining) <
            band_mean(pts, "Bertier (flat, cluster-aware)", 3 * N, 1e9,
                      metric_obtaining),
        "at high parallelism the composition's obtaining time beats "
        "Bertier's flat routing");
  maybe_write_csv("baseline_bertier", pts);
  return 0;
}
