// LockService throughput: K-lock sweep under open-loop Zipf traffic.
//
// The single-lock composition is capacity-bound: one token serializes every
// CS, so aggregate throughput saturates near 1/(alpha + handoff) no matter
// how much load arrives. Sharding the same offered load over K independent
// locks (each its own composition, home clusters spread round-robin)
// removes that serialization — at a fixed aggregate arrival rate that
// saturates K=1, aggregate CS/s scales *superlinearly* in K until the
// per-lock load drops below capacity, because K=1 is measured in overload
// (its throughput is the capacity ceiling, not the offered load).
//
// Swept axes: K in {1, 4, 16, 64} x Zipf s in {0, 0.9, 1.2}. Reported per
// point: aggregate throughput, obtaining-time mean/p99, Jain's fairness
// across locks, inter-cluster messages per CS. A final checker-armed run
// (small K, reduced load) re-verifies token-uniqueness and exclusion per
// lock under the open-loop driver.
//
// Environment overrides (bench_common.hpp conventions):
//   GRIDMUTEX_REPS        repetitions per point        (default 3)
//   GRIDMUTEX_RATE        aggregate arrivals per second (default 300)
//   GRIDMUTEX_WINDOW_MS   arrival window in ms          (default 5000)
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "gridmutex/service/experiment.hpp"

int main() {
  using namespace gmx;
  using namespace gmx::bench;

  const int reps = env_int("GRIDMUTEX_REPS", 3);
  const double rate = env_int("GRIDMUTEX_RATE", 300);
  const int window_ms = env_int("GRIDMUTEX_WINDOW_MS", 5000);

  const std::vector<std::uint32_t> lock_counts = {1, 4, 16, 64};
  const std::vector<double> skews = {0.0, 0.9, 1.2};

  // Fan every (K, s, seed) replication cell across GRIDMUTEX_JOBS threads;
  // merged results are bit-identical to the serial run_service_replicated
  // loop regardless of job count.
  const BenchParams bp;
  std::vector<ServiceConfig> configs;
  for (const std::uint32_t k : lock_counts) {
    for (const double s : skews) {
      ServiceConfig cfg;
      cfg.locks = k;
      cfg.open_loop.arrivals_per_sec = rate;
      cfg.open_loop.window = SimDuration::ms(window_ms);
      cfg.open_loop.zipf_s = s;
      configs.push_back(cfg);
    }
  }
  std::fprintf(stderr, "[service_throughput] running %zu (K, s) points x %d "
               "reps...\n", configs.size(), reps);
  const std::vector<ExperimentResult> results =
      run_service_sweep(configs, reps, bp.threads);
  std::vector<SeriesPoint> points;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    points.push_back(SeriesPoint{"K=" + std::to_string(configs[i].locks),
                                 configs[i].open_loop.zipf_s, results[i]});
  }

  // rho carries the Zipf exponent in this sweep's tables.
  print_metric_table(std::cout, "Aggregate throughput (CS/s)", points,
                     [](const ExperimentResult& r) {
                       return r.throughput_cs_per_s();
                     });
  print_metric_table(std::cout, "Obtaining time (ms)", points,
                     metric_obtaining);
  print_metric_table(std::cout, "Jain fairness across locks", points,
                     [](const ExperimentResult& r) {
                       return r.jain_fairness();
                     });
  print_metric_table(std::cout, "Inter-cluster messages / CS", points,
                     metric_inter_msgs);

  print_service_table(std::cout, at(points, "K=16", 0.9));

  const double thr1 = at(points, "K=1", 0.9).throughput_cs_per_s();
  const double thr4 = at(points, "K=4", 0.9).throughput_cs_per_s();
  const double thr16 = at(points, "K=16", 0.9).throughput_cs_per_s();
  const double thr64 = at(points, "K=64", 0.9).throughput_cs_per_s();

  std::cout << "\nchecks:\n";
  // Superlinear scaling at fixed offered load: K=1 runs in overload, so
  // its throughput is the composition's capacity ceiling; K=16 serves the
  // same load largely in parallel.
  check(thr16 > 3.0 * thr1,
        "K=16 throughput > 3x K=1 at s=0.9 (superlinear vs overloaded "
        "single lock)");
  check(thr4 > 1.5 * thr1, "K=4 throughput > 1.5x K=1 at s=0.9");
  check(thr64 >= 0.9 * thr16,
        "K=64 sustains K=16 throughput (no multiplexing collapse)");
  check(at(points, "K=16", 0.0).jain_fairness() >
            at(points, "K=16", 1.2).jain_fairness(),
        "uniform popularity is fairer than Zipf 1.2 at K=16");
  check(at(points, "K=16", 0.9).obtaining_ms() <
            at(points, "K=1", 0.9).obtaining_ms(),
        "sharding cuts mean obtaining time at s=0.9");
  for (const auto& p : points)
    check(p.result.safety_violations == 0,
          p.series + " s=" + Table::num(p.rho, 1) + ": zero violations");

  // Checker-armed audit: per-lock token uniqueness + exclusion under the
  // open-loop driver, small enough to keep invariant sweeps affordable.
  {
    ServiceConfig cfg;
    cfg.locks = 4;
    cfg.clusters = 9;
    cfg.apps_per_cluster = 3;
    cfg.open_loop.arrivals_per_sec = 60;
    cfg.open_loop.window = SimDuration::ms(500);
    cfg.check_protocol = true;
    const ExperimentResult r = run_service_experiment(cfg);
    check(r.invariant_checks > 0 && r.safety_violations == 0,
          "checker-armed K=4 run: per-lock invariants clean (" +
              std::to_string(r.invariant_checks) + " sweeps)");
  }

  const char* dir = std::getenv("GRIDMUTEX_CSV_DIR");
  if (dir != nullptr) {
    const std::string path = std::string(dir) + "/service_throughput.csv";
    std::ofstream out(path);
    if (out) {
      write_service_csv(out, points);
      std::fprintf(stderr, "wrote %zu service points to %s\n", points.size(),
                   path.c_str());
    }
  }
  return 0;
}
