// Reproduces paper Figure 4(b): number of inter-cluster sent messages per
// critical section vs ρ, same four series as Fig. 4(a).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace gmx;
  using namespace gmx::bench;
  const BenchParams p;
  const auto rhos = paper_rhos();
  const double N = 180;

  std::vector<SeriesPoint> pts;
  for (const char* inter : {"naimi", "martin", "suzuki"}) {
    ExperimentConfig cfg = paper_base(p);
    cfg.inter = inter;
    append(pts, run_series(cfg.label(), cfg, rhos, p));
  }
  {
    ExperimentConfig cfg = paper_base(p);
    cfg.mode = ExperimentConfig::Mode::kFlat;
    cfg.flat_algorithm = "naimi";
    append(pts, run_series(cfg.label(), cfg, rhos, p));
  }

  std::cout << "Figure 4(b) — inter-cluster sent messages per CS vs rho.\n";
  print_metric_table(std::cout, "Inter-cluster messages / CS", pts,
                     metric_inter_msgs);

  std::cout << "\nPaper-shape checks (§4.2/§4.4):\n";
  // Original Naimi: roughly constant in rho (routing ignores location).
  {
    const double lo = at(pts, "Naimi (flat)", 45).inter_msgs_per_cs();
    const double hi = at(pts, "Naimi (flat)", 1080).inter_msgs_per_cs();
    check(std::abs(hi - lo) / std::max(hi, lo) < 0.35,
          "flat Naimi: inter-cluster messages/CS roughly constant in rho");
  }
  // Compositions below the original for small rho; growing with rho.
  for (const char* s : {"Naimi-Naimi", "Naimi-Martin", "Naimi-Suzuki"}) {
    check(at(pts, s, 45).inter_msgs_per_cs() <
              at(pts, "Naimi (flat)", 45).inter_msgs_per_cs(),
          std::string(s) + ": far fewer inter messages than flat at rho=45");
    check(at(pts, s, 45).inter_msgs_per_cs() <
              at(pts, s, 1080).inter_msgs_per_cs(),
          std::string(s) + ": messages/CS increase with rho");
  }
  // Martin cheapest at low rho (requests absorbed on the ring).
  check(band_mean(pts, "Naimi-Martin", 45, N, metric_inter_msgs) <
            band_mean(pts, "Naimi-Naimi", 45, N, metric_inter_msgs),
        "rho<=N: Martin-inter sends fewer inter messages than Naimi-inter");
  check(band_mean(pts, "Naimi-Martin", 45, N, metric_inter_msgs) <
            band_mean(pts, "Naimi-Suzuki", 45, N, metric_inter_msgs),
        "rho<=N: Martin-inter sends fewer inter messages than Suzuki-inter");
  // Naimi < Suzuki everywhere (log K vs K requests).
  check(band_mean(pts, "Naimi-Naimi", 45, 1e9, metric_inter_msgs) <
            band_mean(pts, "Naimi-Suzuki", 45, 1e9, metric_inter_msgs),
        "Naimi-inter cheaper than Suzuki-inter overall");
  // High parallelism: Martin slightly above Naimi.
  check(band_mean(pts, "Naimi-Martin", 3 * N, 1e9, metric_inter_msgs) >
            band_mean(pts, "Naimi-Naimi", 3 * N, 1e9, metric_inter_msgs),
        "rho>=3N: Martin-inter slightly above Naimi-inter");
  maybe_write_csv("fig4b", pts);
  return 0;
}
