// Analysis (beyond the paper): how much latency *hierarchy* does the
// composition need to pay off? The paper's premise (§1) is that WAN ≫ LAN;
// this bench sweeps the WAN/LAN ratio from 1× (no hierarchy — the
// composition's coordinator indirection is pure overhead) to 100× (deep
// hierarchy) and compares Naimi-Naimi against flat Naimi at fixed
// intermediate parallelism.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace gmx;
  using namespace gmx::bench;
  const BenchParams p;

  const SimDuration lan = SimDuration::ms_f(0.5);
  const double ratios[] = {1, 4, 20, 100};
  const double rho = 2.0 * 180.0;  // intermediate parallelism
  const int cs = std::max(10, p.cs / 2);

  std::cout << "Analysis — composition benefit vs WAN/LAN ratio "
               "(9x20, rho=2N, LAN=0.5ms).\n\n";
  Table t({"WAN/LAN", "flat obtain (ms)", "comp obtain (ms)",
           "advantage", "flat inter/CS", "comp inter/CS"});
  double adv_flat_ratio1 = 0, adv_ratio100 = 0;
  for (double ratio : ratios) {
    ExperimentConfig base;
    base.clusters = 9;
    base.apps_per_cluster = 20;
    base.latency = LatencySpec::two_level(lan, lan * ratio, 0.05);
    base.workload.cs_count = cs;
    base.workload.rho = rho;

    ExperimentConfig comp = base;  // naimi-naimi composition
    ExperimentConfig flat = base;
    flat.mode = ExperimentConfig::Mode::kFlat;
    flat.flat_algorithm = "naimi";

    const auto rc = run_replicated(comp, p.reps);
    const auto rf = run_replicated(flat, p.reps);
    const double adv = rf.obtaining_ms() / rc.obtaining_ms();
    t.add_row({Table::num(ratio, 0), Table::num(rf.obtaining_ms()),
               Table::num(rc.obtaining_ms()), Table::num(adv),
               Table::num(rf.inter_msgs_per_cs()),
               Table::num(rc.inter_msgs_per_cs())});
    if (ratio == 1) adv_flat_ratio1 = adv;
    if (ratio == 100) adv_ratio100 = adv;
    std::fprintf(stderr, "[latency-sensitivity] ratio=%.0f done\n", ratio);
  }
  t.print(std::cout);

  std::cout << "\nChecks:\n";
  check(adv_ratio100 > 1.5,
        "with a deep latency hierarchy the composition wins clearly");
  check(adv_ratio100 > adv_flat_ratio1 * 1.3,
        "the composition's advantage grows with the WAN/LAN ratio (the "
        "paper's premise, quantified)");
  check(adv_flat_ratio1 > 0.5,
        "without any hierarchy the coordinator indirection costs at most "
        "~2x — composition is cheap insurance");
  return 0;
}
