// Ablation (paper §6 future work): dynamic inter-algorithm switching.
//
// A two-phase workload on a 9-cluster grid:
//   phase 1 "saturated": every application loops with tiny think times
//     (low parallelism — Martin's regime);
//   phase 2 "sparse": one application per three clusters, long think times
//     (high parallelism — Suzuki's regime).
// Compares static inter algorithms against the AdaptiveComposition
// controller, reporting per-phase mean obtaining times. The adaptive run
// should track the best static choice in each phase.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "gridmutex/core/adaptive.hpp"

namespace {

using namespace gmx;

struct PhaseResult {
  double phase1_ms = 0, phase2_ms = 0;
  int switches = 0;
  std::string final_inter;
};

PhaseResult run_two_phase(const std::string& inter, bool adaptive,
                          int cs_per_phase, std::uint64_t seed) {
  Simulator sim;
  sim.set_event_limit(200'000'000);
  const Topology topo = Composition::make_topology(9, 3);
  Network net(sim, topo,
              std::make_shared<MatrixLatencyModel>(
                  MatrixLatencyModel::grid5000(0.05)),
              Rng(seed));
  Composition comp(net, CompositionConfig{.intra_algorithm = "naimi",
                                          .inter_algorithm = inter,
                                          .seed = seed});
  std::unique_ptr<AdaptiveComposition> ada;
  if (adaptive) {
    AdaptiveConfig acfg;
    acfg.sample_every = SimDuration::ms(50);
    acfg.epoch = SimDuration::ms(500);
    ada = std::make_unique<AdaptiveComposition>(net, comp, acfg);
  }
  comp.start();
  if (ada) ada->start();

  WorkloadMetrics phase1, phase2;
  SafetyMonitor safety;
  Rng root(seed);

  // Phase 1: all apps, rho = 5 (saturation).
  std::vector<std::unique_ptr<AppProcess>> procs1;
  int remaining1 = 0;
  WorkloadParams p1;
  p1.rho = 5;
  p1.cs_count = cs_per_phase;
  // Phase 2 descriptor, started when phase 1 fully drains.
  std::vector<std::unique_ptr<AppProcess>> procs2;
  WorkloadParams p2;
  p2.rho = 4000;  // sparse
  p2.cs_count = cs_per_phase;

  std::size_t i = 0;
  for (NodeId v : comp.app_nodes()) {
    procs1.push_back(std::make_unique<AppProcess>(
        sim, comp.app_mutex(v), p1, root.fork(100 + i), phase1, safety));
    ++remaining1;
    ++i;
  }
  auto start_phase2 = [&] {
    std::size_t j = 0;
    for (ClusterId c = 0; c < 9; c += 3) {
      const NodeId v = topo.first_node_of(c) + 1;
      procs2.push_back(std::make_unique<AppProcess>(
          sim, comp.app_mutex(v), p2, root.fork(500 + j), phase2, safety));
      procs2.back()->start();
      ++j;
    }
  };
  for (auto& p : procs1) {
    p->on_done = [&] {
      if (--remaining1 == 0) start_phase2();
    };
    p->start();
  }

  sim.run_until(sim.now() + SimDuration::sec(3600));
  if (ada) ada->stop();
  sim.run();

  PhaseResult res;
  res.phase1_ms = phase1.obtaining.mean_ms();
  res.phase2_ms = phase2.obtaining.mean_ms();
  res.switches = ada ? ada->switches_completed() : 0;
  res.final_inter = ada ? ada->current_inter() : inter;
  GMX_ASSERT(safety.violations() == 0);
  GMX_ASSERT(phase2.completed_cs == 3u * std::uint64_t(cs_per_phase));
  return res;
}

}  // namespace

int main() {
  using namespace gmx::bench;
  const BenchParams bp;
  const int cs = std::max(20, bp.cs / 2);

  struct Entry {
    std::string name;
    PhaseResult r;
  };
  std::vector<Entry> entries;
  for (const char* inter : {"martin", "naimi", "suzuki"}) {
    PhaseResult acc;
    for (int rep = 0; rep < bp.reps; ++rep) {
      const auto r = run_two_phase(inter, false, cs, 10 + rep);
      acc.phase1_ms += r.phase1_ms / bp.reps;
      acc.phase2_ms += r.phase2_ms / bp.reps;
    }
    acc.final_inter = inter;
    entries.push_back({std::string("static ") + inter, acc});
    std::fprintf(stderr, "[adaptive-ablation] static %s done\n", inter);
  }
  {
    PhaseResult acc;
    int switches = 0;
    std::string final_inter;
    for (int rep = 0; rep < bp.reps; ++rep) {
      const auto r = run_two_phase("martin", true, cs, 10 + rep);
      acc.phase1_ms += r.phase1_ms / bp.reps;
      acc.phase2_ms += r.phase2_ms / bp.reps;
      switches += r.switches;
      final_inter = r.final_inter;
    }
    acc.switches = switches / bp.reps;
    acc.final_inter = final_inter;
    entries.push_back({"adaptive", acc});
    std::fprintf(stderr, "[adaptive-ablation] adaptive done\n");
  }

  std::cout << "Ablation — adaptive inter switching (paper §6 future "
               "work). Two-phase workload: saturated then sparse.\n\n";
  gmx::Table t({"configuration", "phase1 obtain (ms)", "phase2 obtain (ms)",
                "switches", "final inter"});
  for (const auto& e : entries) {
    t.add_row({e.name, gmx::Table::num(e.r.phase1_ms),
               gmx::Table::num(e.r.phase2_ms),
               std::to_string(e.r.switches), e.r.final_inter});
  }
  t.print(std::cout);

  const auto& mart = entries[0].r;
  const auto& suz = entries[2].r;
  const auto& ada = entries[3].r;
  std::cout << "\nChecks:\n";
  check(suz.phase2_ms < mart.phase2_ms,
        "static Suzuki beats static Martin in the sparse phase");
  check(ada.switches >= 1, "the controller actually switched");
  check(ada.final_inter == "suzuki",
        "adaptive run ends on Suzuki (the sparse-phase choice)");
  check(ada.phase2_ms < mart.phase2_ms,
        "adaptive beats static Martin in the sparse phase");
  check(ada.phase1_ms < suz.phase1_ms * 1.25,
        "adaptive tracks the saturated phase within 25% of static Suzuki");
  return 0;
}
