// Reproduces the paper's §4.7 scalability arguments:
//   - "Suzuki-Suzuki scales much better than flat Suzuki": messages per CS
//     drop from ~N to ~(#clusters + cluster size), and the token payload
//     stays bounded by the instance size instead of N.
//   - "Naimi-Naimi also presents better scalability than original Naimi"
//     in inter-cluster messages.
// Swept over grid sizes with a synthetic two-level latency (0.5 ms LAN /
// 10 ms WAN) so the cluster count can vary beyond the 9 of Fig. 3.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace gmx;
  using namespace gmx::bench;
  const BenchParams p;

  struct GridShape {
    std::uint32_t clusters, apps;
  };
  const GridShape shapes[] = {{3, 5}, {6, 10}, {9, 20}, {12, 30}};

  struct Row {
    GridShape shape;
    double flat_suzuki_msgs, comp_suzuki_msgs;
    double flat_suzuki_bytes, comp_suzuki_bytes;
    double flat_naimi_inter, comp_naimi_inter;
  };
  std::vector<Row> rows;

  // All shape x variant points are independent, so batch every config into
  // one sweep and let the SweepRunner fan the (config, seed) replication
  // cells across GRIDMUTEX_JOBS threads.
  std::vector<ExperimentConfig> configs;
  for (const GridShape s : shapes) {
    auto base = [&] {
      ExperimentConfig cfg;
      cfg.clusters = s.clusters;
      cfg.apps_per_cluster = s.apps;
      cfg.latency = LatencySpec::two_level(SimDuration::ms_f(0.5),
                                           SimDuration::ms(10), 0.05);
      cfg.workload.cs_count = std::max(10, p.cs / 5);
      cfg.workload.rho = 2.0 * double(s.clusters * s.apps);  // intermediate
      return cfg;
    };

    ExperimentConfig cfg = base();
    cfg.mode = ExperimentConfig::Mode::kFlat;
    cfg.flat_algorithm = "suzuki";
    configs.push_back(cfg);

    cfg = base();
    cfg.intra = cfg.inter = "suzuki";
    configs.push_back(cfg);

    cfg = base();
    cfg.mode = ExperimentConfig::Mode::kFlat;
    cfg.flat_algorithm = "naimi";
    configs.push_back(cfg);

    cfg = base();
    cfg.intra = cfg.inter = "naimi";
    configs.push_back(cfg);
  }
  std::fprintf(stderr, "[scalability] running %zu configs x %d reps...\n",
               configs.size(), p.reps);
  const std::vector<ExperimentResult> results = run_sweep(
      configs, SweepOptions{.threads = p.threads,
                            .repetitions = p.reps,
                            .progress = {}});

  for (std::size_t i = 0; i < std::size(shapes); ++i) {
    Row row{shapes[i], 0, 0, 0, 0, 0, 0};
    const ExperimentResult& fs = results[i * 4 + 0];
    const ExperimentResult& cs = results[i * 4 + 1];
    row.flat_suzuki_msgs = fs.total_msgs_per_cs();
    row.flat_suzuki_bytes = double(fs.messages.bytes_total) / double(fs.total_cs);
    row.comp_suzuki_msgs = cs.total_msgs_per_cs();
    row.comp_suzuki_bytes = double(cs.messages.bytes_total) / double(cs.total_cs);
    row.flat_naimi_inter = results[i * 4 + 2].inter_msgs_per_cs();
    row.comp_naimi_inter = results[i * 4 + 3].inter_msgs_per_cs();
    rows.push_back(row);
  }

  std::cout << "Section 4.7 — scalability of composition vs flat "
               "algorithms (intermediate parallelism, two-level latency).\n";
  Table t({"grid (KxA)", "N", "Suzuki flat msg/CS", "Suzuki-Suzuki msg/CS",
           "Suzuki flat B/CS", "Suzuki-Suzuki B/CS", "Naimi flat inter/CS",
           "Naimi-Naimi inter/CS"});
  for (const Row& r : rows) {
    const auto n = r.shape.clusters * r.shape.apps;
    t.add_row({std::to_string(r.shape.clusters) + "x" +
                   std::to_string(r.shape.apps),
               std::to_string(n), Table::num(r.flat_suzuki_msgs),
               Table::num(r.comp_suzuki_msgs),
               Table::num(r.flat_suzuki_bytes, 0),
               Table::num(r.comp_suzuki_bytes, 0),
               Table::num(r.flat_naimi_inter),
               Table::num(r.comp_naimi_inter)});
  }
  t.print(std::cout);

  std::cout << "\nPaper-shape checks (§4.7):\n";
  for (const Row& r : rows) {
    const auto n = r.shape.clusters * r.shape.apps;
    check(r.comp_suzuki_msgs < r.flat_suzuki_msgs,
          "N=" + std::to_string(n) +
              ": Suzuki-Suzuki sends fewer messages/CS than flat Suzuki");
    check(r.comp_naimi_inter < r.flat_naimi_inter,
          "N=" + std::to_string(n) +
              ": Naimi-Naimi sends fewer inter messages/CS than flat Naimi");
  }
  // Flat Suzuki message cost grows ~linearly with N; composed stays flat-ish.
  const double flat_growth =
      rows.back().flat_suzuki_msgs / rows.front().flat_suzuki_msgs;
  const double comp_growth =
      rows.back().comp_suzuki_msgs / rows.front().comp_suzuki_msgs;
  check(flat_growth > 3.0, "flat Suzuki msg/CS grows steeply with N");
  check(comp_growth < flat_growth / 2,
        "Suzuki-Suzuki msg/CS grows much more slowly than flat");
  // Token payload: flat Suzuki's token carries O(N); composed O(cluster).
  check(rows.back().comp_suzuki_bytes < rows.back().flat_suzuki_bytes,
        "composition bounds Suzuki's per-CS byte volume");
  return 0;
}
