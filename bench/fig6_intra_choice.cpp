// Reproduces paper Figure 6: the impact of the *intra* algorithm choice,
// inter fixed to Naimi — (a) obtaining time, (b) obtaining-time standard
// deviation, plus the intra-message overhead discussed in §4.6.
#include <iostream>

#include "bench_common.hpp"

namespace {
double metric_intra_msgs(const gmx::ExperimentResult& r) {
  return r.total_cs == 0
             ? 0.0
             : double(r.messages.intra_cluster) / double(r.total_cs);
}
}  // namespace

int main() {
  using namespace gmx;
  using namespace gmx::bench;
  const BenchParams p;
  const auto rhos = paper_rhos();

  std::vector<SeriesPoint> pts;
  for (const char* intra : {"naimi", "martin", "suzuki"}) {
    ExperimentConfig cfg = paper_base(p);
    cfg.intra = intra;
    cfg.inter = "naimi";
    append(pts, run_series(cfg.label(), cfg, rhos, p));
  }

  std::cout << "Figure 6 — intra algorithm choice (inter fixed to Naimi).\n";
  print_metric_table(std::cout, "(a) obtaining time (ms)", pts,
                     metric_obtaining);
  print_metric_table(std::cout, "(b) standard deviation (ms)", pts,
                     metric_stddev);
  print_metric_table(std::cout, "intra-cluster messages / CS (see §4.6)",
                     pts, metric_intra_msgs);

  std::cout << "\nPaper-shape checks (§4.6):\n";
  // (a) all intra choices give nearly the same obtaining time.
  {
    const double nn = band_mean(pts, "Naimi-Naimi", 45, 1e9, metric_obtaining);
    const double mn = band_mean(pts, "Martin-Naimi", 45, 1e9,
                                metric_obtaining);
    const double sn = band_mean(pts, "Suzuki-Naimi", 45, 1e9,
                                metric_obtaining);
    const double lo = std::min({nn, mn, sn}), hi = std::max({nn, mn, sn});
    check(hi / lo < 1.15,
          "obtaining time nearly independent of the intra algorithm");
  }
  // Suzuki-intra floods the LAN with broadcasts.
  check(band_mean(pts, "Suzuki-Naimi", 45, 1e9, metric_intra_msgs) >
            band_mean(pts, "Naimi-Naimi", 45, 1e9, metric_intra_msgs),
        "Suzuki-intra sends far more intra-cluster messages than Naimi");
  // Suzuki-intra's fairness is weaker: larger sigma somewhere in the sweep
  // (the paper reports weaker regularity for Suzuki-Naimi).
  {
    const double sn = band_mean(pts, "Suzuki-Naimi", 45, 180, metric_stddev);
    const double nn = band_mean(pts, "Naimi-Naimi", 45, 180, metric_stddev);
    check(sn > nn,
          "under saturation Suzuki-intra shows weaker regularity than "
          "Naimi-intra (unfair token queue)");
  }
  maybe_write_csv("fig6", pts);
  return 0;
}
