// perf_suite — the canned performance suite behind BENCH_PR5.json.
//
// One binary measures, in a single run, everything the performance gate
// cares about:
//
//   micro rows   event-queue steady-state push/pop (the slab/4-ary kernel
//                *and* an embedded copy of the pre-optimisation queue —
//                std::function callbacks, binary heap, tombstone-set
//                cancellation — so the speedup ratio is computed from
//                numbers recorded on the same machine in the same run),
//                simulator dispatch chains, and the wire codec.
//   macro rows   full experiments: flat Naimi, composed Naimi-Martin, a
//                K=16 LockService run, and the scalability-style sweep at
//                --jobs 1 vs --jobs N (hardware).
//
// Every row reports events/sec (or items/sec), CS/sec where a workload
// completes critical sections, and wall seconds. Memory comes in two
// fields: `peak_rss_kb` is the *process-cumulative* getrusage high-water
// mark at the end of the row (monotone across rows — later rows can never
// report less than earlier ones), and `rss_delta_kb` is how much this row
// raised that high-water mark (0 for a row that fit in memory already
// allocated by earlier rows). Both are informational; bench_compare never
// gates on them. Output is a small JSON document — default
// ./BENCH_PR5.json — that tools/bench_compare diffs against a committed
// baseline with tolerances.
//
// Flags:
//   --quick       reduced iteration counts / scales (CI smoke)
//   --out <path>  output path (default BENCH_PR5.json)
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "gridmutex/net/wire.hpp"
#include "gridmutex/service/experiment.hpp"
#include "gridmutex/sim/event_queue.hpp"
#include "gridmutex/sim/random.hpp"
#include "gridmutex/sim/simulator.hpp"
#include "gridmutex/transport/udp.hpp"
#include "gridmutex/workload/runner.hpp"

namespace {

using namespace gmx;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

struct Row {
  std::string name;
  double events_per_sec = 0.0;  // items/sec for micro rows
  double cs_per_sec = 0.0;
  double wall_s = 0.0;
  long rss_kb = 0;        // process-cumulative high-water mark (getrusage)
  long rss_delta_kb = 0;  // growth of the mark attributable to this row
};

// ---------------------------------------------------------------------------
// The pre-PR event queue, verbatim in structure: std::function entries on a
// binary std::push_heap/std::pop_heap heap, cancellation via a tombstone
// set probed on every surfacing id. Embedded so the "how much faster is the
// new kernel" ratio never compares numbers from different machines or
// different compiler flags.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;
  struct Entry {
    SimTime time;
    std::uint64_t id;
    Callback fn;
  };

  std::uint64_t push(SimTime t, Callback fn) {
    const std::uint64_t id = next_id_++;
    heap_.push_back(HeapItem{t, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++live_;
    return id;
  }

  bool cancel(std::uint64_t id) {
    if (id == 0 || id >= next_id_) return false;
    if (!cancelled_.insert(id).second) return false;
    const bool in_heap =
        std::any_of(heap_.begin(), heap_.end(),
                    [id](const HeapItem& h) { return h.id == id; });
    if (!in_heap) {
      cancelled_.erase(id);
      return false;
    }
    --live_;
    return true;
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }

  Entry pop() {
    drop_cancelled_top();
    std::pop_heap(heap_.begin(), heap_.end(), later);
    HeapItem item = std::move(heap_.back());
    heap_.pop_back();
    --live_;
    return Entry{item.time, item.id, std::move(item.fn)};
  }

 private:
  struct HeapItem {
    SimTime time;
    std::uint64_t id;
    Callback fn;
  };
  static bool later(const HeapItem& a, const HeapItem& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
  void drop_cancelled_top() {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.front().id);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      std::pop_heap(heap_.begin(), heap_.end(), later);
      heap_.pop_back();
    }
  }

  std::vector<HeapItem> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::size_t live_ = 0;
  std::uint64_t next_id_ = 1;
};

// ---------------------------------------------------------------------------
// Micro scenarios. Each keeps `depth` events pending and cycles
// push-one/pop-one `iters` times — the steady state of a running
// simulation, where the queue depth tracks in-flight messages.
//
// Callbacks carry a 64-byte capture, the size class of the kernel's real
// workload: a delivery closure holds a Message (endpoints, type, seq,
// payload handle). That is past std::function's small-object buffer, so
// the legacy queue pays one heap allocation per event; EventFn stores it
// inline in the slab.

struct DeliveryPayload {
  std::uint64_t words[7];
  volatile std::uint64_t* sink;
  void operator()() const { *sink = *sink + words[0]; }
};

template <typename Queue>
Row micro_push_pop(const char* name, std::size_t depth,
                   std::uint64_t iters) {
  Queue q;
  Rng rng(1);
  volatile std::uint64_t sink = 0;
  const DeliveryPayload payload{{1, 2, 3, 4, 5, 6, 7}, &sink};
  for (std::size_t i = 0; i < depth; ++i)
    q.push(SimTime::from_ns(std::int64_t(rng.next_below(1'000'000))),
           payload);
  const auto t0 = Clock::now();
  std::int64_t t = 1'000'000;
  for (std::uint64_t i = 0; i < iters; ++i) {
    q.push(SimTime::from_ns(t + std::int64_t(rng.next_below(10'000))),
           payload);
    ++t;
    auto e = q.pop();
    e.fn();
  }
  const double wall = seconds_since(t0);
  return Row{name, double(iters) / wall, 0.0, wall, peak_rss_kb()};
}

// The ARQ steady state: every send schedules a delivery *and* a retransmit
// timer that is almost always cancelled when the ack lands. Cancellation is
// where the two kernels differ most — the legacy queue scans the whole heap
// per cancel and parks a tombstone; the slab kernel resolves the id in O(1).
template <typename Queue>
Row micro_timer_mix(const char* name, std::size_t depth,
                    std::uint64_t iters) {
  Queue q;
  Rng rng(1);
  volatile std::uint64_t sink = 0;
  const auto noop = [&sink] { sink = sink + 1; };
  for (std::size_t i = 0; i < depth; ++i)
    q.push(SimTime::from_ns(std::int64_t(rng.next_below(1'000'000))), noop);
  // Ring of in-flight retransmit timers; the oldest is cancelled each
  // iteration, modelling acks clearing timers in FIFO-ish order.
  std::vector<std::uint64_t> timers(64, 0);
  std::size_t cursor = 0;
  const auto t0 = Clock::now();
  std::int64_t t = 1'000'000;
  for (std::uint64_t i = 0; i < iters; ++i) {
    q.push(SimTime::from_ns(t + std::int64_t(rng.next_below(10'000))), noop);
    const auto timer =
        q.push(SimTime::from_ns(t + 50'000'000), noop);  // retransmit timer
    if (timers[cursor] != 0) q.cancel(timers[cursor]);
    timers[cursor] = timer;
    cursor = (cursor + 1) % timers.size();
    ++t;
    auto e = q.pop();
    e.fn();
  }
  const double wall = seconds_since(t0);
  return Row{name, double(iters) / wall, 0.0, wall, peak_rss_kb()};
}

Row micro_dispatch(std::uint64_t iters) {
  // Self-scheduling chain: pure kernel dispatch (schedule + pop + invoke).
  Simulator sim;
  std::function<void()> tick = [&] {
    sim.schedule_after(SimDuration::us(1), [&] { tick(); });
  };
  tick();
  const auto t0 = Clock::now();
  sim.run_steps(iters);
  const double wall = seconds_since(t0);
  return Row{"micro_simulator_dispatch", double(iters) / wall, 0.0, wall,
             peak_rss_kb()};
}

Row micro_wire_codec(std::uint64_t iters) {
  // Round-trip the largest message in the system (Suzuki token, N=180).
  const std::size_t n = 180;
  std::vector<std::uint64_t> ln(n);
  std::vector<std::uint32_t> q(n / 4);
  Rng rng(5);
  for (auto& v : ln) v = rng.next_below(1000);
  for (auto& v : q) v = std::uint32_t(rng.next_below(n));
  const auto t0 = Clock::now();
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    wire::Writer w(n * 3);
    w.varint_array(std::span<const std::uint64_t>(ln));
    w.varint_array(std::span<const std::uint32_t>(q));
    wire::Reader r(w.view());
    sink += r.varint_array_u64().size() + r.varint_array_u32().size();
  }
  const double wall = seconds_since(t0);
  if (sink == 0) std::abort();  // keep the loop honest
  return Row{"micro_wire_codec_roundtrip", double(iters) / wall, 0.0, wall,
             peak_rss_kb()};
}

Row micro_transport_roundtrip(std::uint64_t iters) {
  // Serial request/reply ping-pong between two UdpTransports over loopback
  // UDP, on the reliable (ARQ-sequenced, acked) path lockd itself uses —
  // so one "msg" here is the full stack: encode, frame, sendmsg, poll,
  // decode, ack, dispatch, and the echo of all of that coming back.
  // Round-trips/sec, warn-only in bench_compare (wall-clock jitter on
  // loaded CI machines is expected).
  using transport::PeerAddr;
  using transport::UdpTransport;
  UdpTransport a(0, "127.0.0.1", 0);
  UdpTransport b(1, "127.0.0.1", 0);
  a.add_peer(1, PeerAddr::loopback(b.port()));
  b.add_peer(0, PeerAddr::loopback(a.port()));
  const ProtocolId kProto = 1;
  a.set_reliable(kProto);
  b.set_reliable(kProto);

  b.attach(kProto, [&b](const Message& m) {
    wire::Reader rd(m.payload);
    Message echo;
    echo.dst = 0;
    echo.protocol = m.protocol;
    echo.type = 2;
    wire::Writer w = b.writer(16);
    w.u64(rd.u64());
    echo.payload = w.take_payload();
    b.send(echo);
  });
  std::promise<void> all_done;
  auto completed = std::make_shared<std::uint64_t>(0);
  const auto fire = [kProto](UdpTransport& tp, std::uint64_t n) {
    Message m;
    m.dst = 1;
    m.protocol = kProto;
    m.type = 1;
    wire::Writer w = tp.writer(16);
    w.u64(n);
    m.payload = w.take_payload();
    tp.send(m);
  };
  a.attach(kProto, [&a, completed, iters, &all_done, fire](const Message&) {
    if (++*completed >= iters) {
      all_done.set_value();
      return;
    }
    fire(a, *completed);
  });

  b.start();
  a.start();
  const auto t0 = Clock::now();
  a.post([&a, fire] { fire(a, 0); });
  all_done.get_future().wait();
  const double wall = seconds_since(t0);
  a.stop();
  b.stop();
  return Row{"micro_transport_roundtrip", double(iters) / wall, 0.0, wall,
             peak_rss_kb()};
}

// ---------------------------------------------------------------------------
// Macro scenarios: complete experiments, reporting simulator events/sec and
// completed CS/sec of wall time.

Row macro_row(const std::string& name, const ExperimentResult& r,
              double wall) {
  return Row{name, double(r.events) / wall, double(r.total_cs) / wall, wall,
             peak_rss_kb()};
}

ExperimentConfig paper_config(bool quick) {
  ExperimentConfig cfg;  // 9x20, grid5000 latency
  cfg.workload.alpha = SimDuration::ms(10);
  cfg.workload.cs_count = quick ? 5 : 30;
  cfg.workload.rho = 360;  // intermediate parallelism
  return cfg;
}

Row macro_flat(bool quick) {
  ExperimentConfig cfg = paper_config(quick);
  cfg.mode = ExperimentConfig::Mode::kFlat;
  cfg.flat_algorithm = "naimi";
  const auto t0 = Clock::now();
  const ExperimentResult r = run_experiment(cfg);
  return macro_row("macro_flat_naimi", r, seconds_since(t0));
}

Row macro_composed(bool quick) {
  ExperimentConfig cfg = paper_config(quick);
  cfg.intra = "naimi";
  cfg.inter = "martin";
  const auto t0 = Clock::now();
  const ExperimentResult r = run_experiment(cfg);
  return macro_row("macro_composed_naimi_martin", r, seconds_since(t0));
}

Row macro_service(bool quick) {
  ServiceConfig cfg;
  cfg.locks = 16;
  cfg.open_loop.arrivals_per_sec = 300;
  cfg.open_loop.window = SimDuration::ms(quick ? 1000 : 3000);
  cfg.open_loop.zipf_s = 0.9;
  const auto t0 = Clock::now();
  const ExperimentResult r = run_service_experiment(cfg);
  return macro_row("macro_service_k16", r, seconds_since(t0));
}

std::vector<ExperimentConfig> sweep_configs(bool quick) {
  std::vector<ExperimentConfig> configs;
  for (const char* flat : {"naimi", "suzuki"}) {
    ExperimentConfig cfg = paper_config(quick);
    cfg.mode = ExperimentConfig::Mode::kFlat;
    cfg.flat_algorithm = flat;
    configs.push_back(cfg);
  }
  for (const char* intra : {"naimi", "suzuki"}) {
    ExperimentConfig cfg = paper_config(quick);
    cfg.intra = intra;
    cfg.inter = "naimi";
    configs.push_back(cfg);
  }
  return configs;
}

Row macro_sweep(const std::string& name, std::size_t jobs, bool quick) {
  const std::vector<ExperimentConfig> configs = sweep_configs(quick);
  const int reps = quick ? 2 : 4;
  const auto t0 = Clock::now();
  const std::vector<ExperimentResult> results = run_sweep(
      configs,
      SweepOptions{.threads = jobs, .repetitions = reps, .progress = {}});
  const double wall = seconds_since(t0);
  std::uint64_t events = 0, cs = 0;
  for (const ExperimentResult& r : results) {
    events += r.events;
    cs += r.total_cs;
  }
  return Row{name, double(events) / wall, double(cs) / wall, wall,
             peak_rss_kb()};
}

void emit_json(std::ostream& out, const std::vector<Row>& rows, bool quick) {
  out << "{\n";
  out << "  \"meta\": {\"cores\": "
      << std::thread::hardware_concurrency() << ", \"quick\": "
      << (quick ? "true" : "false") << "},\n";
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"events_per_sec\": %.1f, "
                  "\"cs_per_sec\": %.1f, \"wall_s\": %.4f, "
                  "\"peak_rss_kb\": %ld, \"rss_delta_kb\": %ld}%s\n",
                  r.name.c_str(), r.events_per_sec, r.cs_per_sec, r.wall_s,
                  r.rss_kb, r.rss_delta_kb, i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_PR5.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_suite [--quick] [--out <path>]\n");
      return 2;
    }
  }

  const std::uint64_t micro_iters = quick ? 300'000 : 3'000'000;
  std::vector<Row> rows;
  long prev_rss = peak_rss_kb();
  auto log = [&](Row r) {
    // getrusage's mark is cumulative; the delta isolates this row's
    // contribution (0 when the row reused memory from earlier rows).
    r.rss_delta_kb = r.rss_kb - prev_rss;
    prev_rss = r.rss_kb;
    std::fprintf(stderr,
                 "[perf_suite] %-36s %12.0f ev/s %10.0f cs/s %8.3fs\n",
                 r.name.c_str(), r.events_per_sec, r.cs_per_sec, r.wall_s);
    rows.push_back(std::move(r));
  };

  log(micro_push_pop<EventQueue>("micro_event_queue_push_pop", 1024,
                                 micro_iters));
  log(micro_push_pop<LegacyEventQueue>("micro_event_queue_push_pop_legacy",
                                       1024, micro_iters));
  log(micro_timer_mix<EventQueue>("micro_event_queue_timer_mix", 1024,
                                  micro_iters));
  log(micro_timer_mix<LegacyEventQueue>(
      "micro_event_queue_timer_mix_legacy", 1024, micro_iters / 8));
  log(micro_dispatch(micro_iters));
  log(micro_wire_codec(quick ? 30'000 : 300'000));
  log(micro_transport_roundtrip(quick ? 2'000 : 20'000));

  log(macro_flat(quick));
  log(macro_composed(quick));
  log(macro_service(quick));
  log(macro_sweep("macro_sweep_jobs1", 1, quick));
  log(macro_sweep("macro_sweep_jobs_hw", 0, quick));

  auto rate = [&](const char* name) {
    for (const Row& r : rows)
      if (r.name == name) return r.events_per_sec;
    return 0.0;
  };
  auto wall = [&](const char* name) {
    for (const Row& r : rows)
      if (r.name == name) return r.wall_s;
    return 0.0;
  };
  std::fprintf(stderr,
               "[perf_suite] push/pop speedup vs legacy kernel: %.2fx\n",
               rate("micro_event_queue_push_pop") /
                   rate("micro_event_queue_push_pop_legacy"));
  std::fprintf(stderr,
               "[perf_suite] timer-mix dispatch speedup vs legacy kernel: "
               "%.2fx\n",
               rate("micro_event_queue_timer_mix") /
                   rate("micro_event_queue_timer_mix_legacy"));
  std::fprintf(stderr,
               "[perf_suite] sweep jobs=hw vs jobs=1 speedup: %.2fx "
               "(%u cores)\n",
               wall("macro_sweep_jobs1") / wall("macro_sweep_jobs_hw"),
               std::thread::hardware_concurrency());

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  emit_json(out, rows, quick);
  std::fprintf(stderr, "[perf_suite] wrote %s\n", out_path.c_str());
  return 0;
}
