// gridmutex_cli — run composition/flat experiments from the command line.
//
//   $ gridmutex_cli --composition naimi-martin --flat naimi
//         --rho 45,180,720 --reps 3 --csv out.csv
//
// Service mode hosts K locks in one LockService and drives open-loop
// Zipf traffic instead of the closed-loop rho sweep:
//
//   $ gridmutex_cli --composition naimi-naimi --locks 16 --zipf 0.9
//         --placement hash --reps 3 --csv service.csv
//
// See --help (workload/cli.hpp) for the full grammar.
#include <fstream>
#include <iostream>
#include <vector>

#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/service/experiment.hpp"
#include "gridmutex/workload/cli.hpp"
#include "gridmutex/workload/report.hpp"
#include "gridmutex/workload/runner.hpp"

namespace {

int run_service_mode(const gmx::CliOptions& opt) {
  using namespace gmx;
  std::vector<ServiceConfig> configs;
  for (const ExperimentConfig& base : opt.series) {
    ServiceConfig cfg;
    cfg.locks = opt.locks;
    cfg.intra = base.intra;
    cfg.inter = base.inter;
    cfg.placement = parse_placement(opt.placement);
    cfg.clusters = base.clusters;
    cfg.apps_per_cluster = base.apps_per_cluster;
    cfg.latency = base.latency;
    cfg.open_loop.zipf_s = opt.zipf_s;
    cfg.seed = base.seed;
    std::cerr << "running " << cfg.label() << " (zipf s=" << opt.zipf_s
              << ", " << opt.placement << " placement) x "
              << opt.repetitions << " reps...\n";
    configs.push_back(std::move(cfg));
  }
  const std::vector<ExperimentResult> results =
      run_service_sweep(configs, opt.repetitions, opt.threads);
  std::vector<SeriesPoint> points;
  for (const ExperimentResult& r : results) {
    print_service_table(std::cout, r);
    points.push_back(SeriesPoint{r.label, opt.zipf_s, r});
  }
  if (opt.csv_path) {
    std::ofstream csv(*opt.csv_path);
    if (!csv) {
      std::cerr << "error: cannot write " << *opt.csv_path << "\n";
      return 1;
    }
    write_service_csv(csv, points);
    std::cerr << "wrote " << points.size() << " service points to "
              << *opt.csv_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmx;
  std::vector<std::string_view> args(argv + 1, argv + argc);
  const auto parsed = parse_cli(args);
  if (const auto* err = std::get_if<CliError>(&parsed)) {
    std::cerr << "error: " << err->message << "\n\n" << cli_usage();
    return 2;
  }
  const CliOptions& opt = std::get<CliOptions>(parsed);
  if (opt.help) {
    std::cout << cli_usage();
    return 0;
  }
  if (opt.list_algorithms) {
    for (const std::string& name : algorithm_names()) {
      std::cout << name;
      for (std::size_t i = name.size(); i < 10; ++i) std::cout << ' ';
      std::cout << algorithm_description(name) << "\n";
    }
    return 0;
  }
  if (opt.locks > 0) return run_service_mode(opt);

  std::vector<SeriesPoint> points;
  for (const ExperimentConfig& base : opt.series) {
    std::cerr << "running " << base.label() << " over " << opt.rhos.size()
              << " rho points x " << opt.repetitions << " reps...\n";
    const auto results = run_rho_sweep(
        base, opt.rhos,
        SweepOptions{.threads = opt.threads,
                     .repetitions = opt.repetitions,
                     .progress = {}});
    for (std::size_t i = 0; i < results.size(); ++i)
      points.push_back(SeriesPoint{base.label(), opt.rhos[i], results[i]});
  }

  print_metric_table(std::cout, "Obtaining time (ms)", points,
                     [](const ExperimentResult& r) { return r.obtaining_ms(); });
  print_metric_table(std::cout, "Obtaining time sigma (ms)", points,
                     [](const ExperimentResult& r) { return r.stddev_ms(); });
  print_metric_table(std::cout, "Inter-cluster messages / CS", points,
                     [](const ExperimentResult& r) {
                       return r.inter_msgs_per_cs();
                     });
  print_metric_table(std::cout, "Total messages / CS", points,
                     [](const ExperimentResult& r) {
                       return r.total_msgs_per_cs();
                     });
  print_metric_table(std::cout, "Obtaining time p99 (ms)", points,
                     [](const ExperimentResult& r) {
                       return r.obtaining_hist.count() > 0
                                  ? r.obtaining_hist.percentile(0.99)
                                  : 0.0;
                     });

  if (opt.csv_path) {
    std::ofstream csv(*opt.csv_path);
    if (!csv) {
      std::cerr << "error: cannot write " << *opt.csv_path << "\n";
      return 1;
    }
    write_csv(csv, points);
    std::cerr << "wrote " << points.size() << " points to " << *opt.csv_path
              << "\n";
  }
  return 0;
}
