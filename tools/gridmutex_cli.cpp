// gridmutex_cli — run composition/flat experiments from the command line.
//
//   $ gridmutex_cli --composition naimi-martin --flat naimi
//         --rho 45,180,720 --reps 3 --csv out.csv
//
// See --help (workload/cli.hpp) for the full grammar.
#include <fstream>
#include <iostream>
#include <vector>

#include "gridmutex/workload/cli.hpp"
#include "gridmutex/workload/report.hpp"
#include "gridmutex/workload/runner.hpp"

int main(int argc, char** argv) {
  using namespace gmx;
  std::vector<std::string_view> args(argv + 1, argv + argc);
  const auto parsed = parse_cli(args);
  if (const auto* err = std::get_if<CliError>(&parsed)) {
    std::cerr << "error: " << err->message << "\n\n" << cli_usage();
    return 2;
  }
  const CliOptions& opt = std::get<CliOptions>(parsed);
  if (opt.help) {
    std::cout << cli_usage();
    return 0;
  }

  std::vector<SeriesPoint> points;
  for (const ExperimentConfig& base : opt.series) {
    std::cerr << "running " << base.label() << " over " << opt.rhos.size()
              << " rho points x " << opt.repetitions << " reps...\n";
    const auto results = run_rho_sweep(
        base, opt.rhos,
        SweepOptions{.threads = opt.threads,
                     .repetitions = opt.repetitions,
                     .progress = {}});
    for (std::size_t i = 0; i < results.size(); ++i)
      points.push_back(SeriesPoint{base.label(), opt.rhos[i], results[i]});
  }

  print_metric_table(std::cout, "Obtaining time (ms)", points,
                     [](const ExperimentResult& r) { return r.obtaining_ms(); });
  print_metric_table(std::cout, "Obtaining time sigma (ms)", points,
                     [](const ExperimentResult& r) { return r.stddev_ms(); });
  print_metric_table(std::cout, "Inter-cluster messages / CS", points,
                     [](const ExperimentResult& r) {
                       return r.inter_msgs_per_cs();
                     });
  print_metric_table(std::cout, "Total messages / CS", points,
                     [](const ExperimentResult& r) {
                       return r.total_msgs_per_cs();
                     });
  print_metric_table(std::cout, "Obtaining time p99 (ms)", points,
                     [](const ExperimentResult& r) {
                       return r.obtaining_hist.count() > 0
                                  ? r.obtaining_hist.percentile(0.99)
                                  : 0.0;
                     });

  if (opt.csv_path) {
    std::ofstream csv(*opt.csv_path);
    if (!csv) {
      std::cerr << "error: cannot write " << *opt.csv_path << "\n";
      return 1;
    }
    write_csv(csv, points);
    std::cerr << "wrote " << points.size() << " points to " << *opt.csv_path
              << "\n";
  }
  return 0;
}
