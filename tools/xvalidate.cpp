// xvalidate — sim-vs-real cross-validation harness.
//
//   $ xvalidate --clusters 2 --apps 4 --locks 4 --rate 150
//               --window-sec 2 --zipf 0.9 --hold-ms 5 --seed 7
//
// Launches one lockd process per grid node on localhost (ephemeral
// ports, parsed off each child's "lockd node=N port=P" line), wires and
// starts the grid over the client protocol, replays the simulator's
// open-loop trace against it (transport/campaign.hpp), then runs the
// *same* trace through run_service_experiment on a localhost-like
// latency model and prints a side-by-side comparison table — the
// methodology behind the table in docs/TRANSPORT.md.
//
// Exit status is non-zero on any client-side safety violation (fencing
// monotonicity, CS exclusion) or accounting-closure mismatch, so the
// harness doubles as an end-to-end correctness gate.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "gridmutex/service/experiment.hpp"
#include "gridmutex/transport/campaign.hpp"
#include "gridmutex/transport/client.hpp"
#include "lockd_flags.hpp"

namespace {

using namespace gmx::transport;
using gmx::NodeId;

struct Child {
  pid_t pid = -1;
  int out = -1;  // read end of the stdout pipe
};

/// fork/exec one lockd with --port 0; returns the child and leaves the
/// handshake line unread on `out`.
Child spawn_lockd(const std::string& lockd_path, const GridConfig& grid,
                  NodeId node) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    const std::vector<std::string> args = {
        lockd_path,
        "--node", std::to_string(node),
        "--clusters", std::to_string(grid.clusters),
        "--apps", std::to_string(grid.apps_per_cluster),
        "--locks", std::to_string(grid.locks),
        "--intra", grid.intra_algorithm,
        "--inter", grid.inter_algorithm,
        "--placement", std::string(gmx::to_string(grid.placement)),
        "--seed", std::to_string(grid.seed),
        "--port", "0",
    };
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    execv(lockd_path.c_str(), argv.data());
    std::perror("execv lockd");
    _exit(127);
  }
  close(fds[1]);
  return Child{pid, fds[0]};
}

/// Reads the child's "lockd node=N port=P" handshake; 0 on failure.
std::uint16_t read_port(const Child& child) {
  std::string line;
  char ch = 0;
  while (read(child.out, &ch, 1) == 1 && ch != '\n') line.push_back(ch);
  const std::size_t at = line.rfind("port=");
  if (at == std::string::npos) return 0;
  return std::uint16_t(std::strtoul(line.c_str() + at + 5, nullptr, 10));
}

}  // namespace

int main(int argc, char** argv) {
  CampaignConfig cc;
  cc.open_loop.arrivals_per_sec = 150.0;
  cc.open_loop.window = gmx::SimDuration::sec(2);
  cc.open_loop.hold = gmx::SimDuration::ms(5);
  std::string lockd_path;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string_view key = argv[i];
    const std::string_view val = argv[i + 1];
    if (lockd_flags::parse_campaign_flag(cc, key, val)) continue;
    if (key == "--lockd") lockd_path = std::string(val);
    else {
      std::cerr << "usage: xvalidate [grid flags] [campaign flags] "
                   "[--lockd PATH]\n";
      return 2;
    }
  }
  if (lockd_path.empty()) {
    // Default: the lockd built next to this binary.
    std::string self = argv[0];
    const std::size_t slash = self.rfind('/');
    lockd_path = (slash == std::string::npos ? std::string(".")
                                             : self.substr(0, slash)) +
                 "/lockd";
  }
  const GridConfig& grid = cc.grid;
  const std::uint32_t n = grid.node_count();

  // --- launch the grid --------------------------------------------------
  std::cerr << "xvalidate: launching " << n << " lockd processes ("
            << grid.clusters << " clusters x " << grid.apps_per_cluster
            << " apps, K=" << grid.locks << ", "
            << grid.intra_algorithm << "-" << grid.inter_algorithm
            << ", seed " << grid.seed << ")\n";
  std::vector<Child> children;
  std::vector<PeerAddr> nodes;
  for (NodeId i = 0; i < n; ++i)
    children.push_back(spawn_lockd(lockd_path, grid, i));
  for (NodeId i = 0; i < n; ++i) {
    const std::uint16_t port = read_port(children[i]);
    if (port == 0) {
      std::cerr << "xvalidate: lockd " << i << " failed to report a port\n";
      return 1;
    }
    nodes.push_back(PeerAddr::loopback(port));
  }

  // --- handshake: ping-wait, peer tables, start -------------------------
  {
    LockClient client(nodes, grid.client_protocol());
    for (NodeId i = 0; i < n; ++i) {
      if (!client.ping(i, 10000)) {
        std::cerr << "xvalidate: node " << i << " unreachable\n";
        return 1;
      }
    }
    for (NodeId i = 0; i < n; ++i) {
      if (!client.send_peers(i, 5000) || !client.start(i, 5000)) {
        std::cerr << "xvalidate: node " << i << " failed the handshake\n";
        return 1;
      }
    }
  }

  // --- real half: the campaign ------------------------------------------
  const CampaignResult real = run_campaign(nodes, cc);

  // --- stats, closure, shutdown -----------------------------------------
  NodeStats total;
  bool ok = real.safe();
  {
    LockClient client(nodes, grid.client_protocol());
    for (NodeId i = 0; i < n; ++i) {
      const auto s = client.stats(i, 5000);
      if (!s) {
        std::cerr << "xvalidate: node " << i << " kStats timed out\n";
        return 1;
      }
      total += *s;
    }
    for (NodeId i = 0; i < n; ++i) (void)client.shutdown(i, 5000);
  }
  for (const Child& c : children) {
    int status = 0;
    waitpid(c.pid, &status, 0);
    close(c.out);
  }
  const bool closed =
      total.arrivals == total.grants + total.sheds + total.deadline_misses &&
      total.releases == total.grants && total.arrivals == real.arrivals &&
      total.grants == real.grants;
  ok = ok && closed;

  // --- sim half: the same trace through the simulator -------------------
  gmx::ServiceConfig sim;
  sim.clusters = grid.clusters;
  sim.apps_per_cluster = grid.apps_per_cluster;
  sim.locks = grid.locks;
  sim.intra = grid.intra_algorithm;
  sim.inter = grid.inter_algorithm;
  sim.placement = grid.placement;
  sim.seed = grid.seed;
  sim.open_loop = cc.open_loop;
  // Localhost-like latency: ~50us one-way everywhere. The residual
  // real-minus-sim delta is the genuine protocol-stack overhead.
  sim.latency = gmx::LatencySpec::two_level(
      gmx::SimDuration::us(50), gmx::SimDuration::us(50), 0.0);
  const gmx::ExperimentResult simr = gmx::run_service_experiment(sim);

  // --- the table --------------------------------------------------------
  const double scale = cc.time_scale;
  std::cout << "\n### Cross-validation: " << grid.intra_algorithm << "-"
            << grid.inter_algorithm << ", " << grid.clusters << "x"
            << grid.apps_per_cluster << " apps, K=" << grid.locks
            << ", rate " << cc.open_loop.arrivals_per_sec << "/s, zipf "
            << cc.open_loop.zipf_s << ", hold "
            << cc.open_loop.hold.as_ms() << "ms, seed " << grid.seed
            << (scale != 1.0 ? " (time_scale " + std::to_string(scale) + ")"
                             : std::string())
            << "\n\n";
  std::cout << "| substrate | cs | throughput (cs/s) | obtain mean (ms) | "
               "p50 | p99 |\n";
  std::cout << "|---|---|---|---|---|---|\n";
  std::printf("| sim (DES, 50us links) | %llu | %.1f | %.3f | %.3f | %.3f |\n",
              (unsigned long long)simr.total_cs, simr.throughput_cs_per_s(),
              simr.obtaining.mean_ms(), simr.obtaining_hist.percentile(0.5),
              simr.obtaining_hist.percentile(0.99));
  std::printf("| real (UDP localhost) | %llu | %.1f | %.3f | %.3f | %.3f |\n",
              (unsigned long long)real.grants,
              real.throughput_cs_per_s() * scale, real.obtain_mean_ms(),
              real.obtain_percentile_ms(0.5), real.obtain_percentile_ms(0.99));
  std::cout << "\nreal run: arrivals=" << real.arrivals << " grants="
            << real.grants << " sheds=" << real.sheds << " misses="
            << real.deadline_misses << " fences_issued="
            << total.fences_issued << " wall=" << real.wall_sec << "s\n"
            << "safety: fence_violations=" << real.fence_violations
            << " exclusion_violations=" << real.exclusion_violations
            << "; accounting " << (closed ? "closed" : "MISMATCH") << "\n"
            << (ok ? "xvalidate OK" : "xvalidate FAILED") << "\n";
  return ok ? 0 : 1;
}
