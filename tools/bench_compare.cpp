// bench_compare — diff two perf_suite BENCH json files with tolerances.
//
//   $ bench_compare baseline.json current.json [--tolerance 0.25] [--warn-only]
//                   [--only <substr>]... [--exclude <substr>]...
//
// For every row name present in both files, compares the throughput
// metrics (events_per_sec, cs_per_sec — higher is better) and reports a
// regression when current < baseline * (1 - tolerance). Improvements and
// new/missing rows are reported informationally. Memory fields
// (peak_rss_kb, rss_delta_kb) are *informational only*: peak_rss_kb is a
// process-cumulative high-water mark, so comparing it per row would gate
// on row ordering rather than on the row itself — the tool prints the
// change but never counts it as a regression. Exit status: 0 clean or
// --warn-only, 1 on regression, 2 on usage/parse errors.
//
// The parser handles exactly the schema perf_suite emits (flat rows of
// string/number fields) — deliberately not a general JSON library, so the
// tool stays dependency-free.
//
// Row selection: --only keeps rows whose name contains any given
// substring; --exclude then drops rows matching any of its substrings
// (exclude wins over only). This lets CI gate the stable macro rows hard
// (--only macro_ --tolerance 0.10) while keeping the noisier micro rows
// warn-only at a looser tolerance, from one BENCH json pair. Rows dropped
// by selection are silently skipped — they count as neither regression
// nor missing.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Row {
  double events_per_sec = 0.0;
  double cs_per_sec = 0.0;
  double wall_s = 0.0;
  double peak_rss_kb = 0.0;
};

/// Extracts `"key": <number>` from a row object's text.
std::optional<double> number_field(const std::string& obj,
                                   const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const char* p = obj.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(p, &end);
  if (end == p) return std::nullopt;
  return v;
}

std::optional<std::string> string_field(const std::string& obj,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t start = at + needle.size();
  const std::size_t close = obj.find('"', start);
  if (close == std::string::npos) return std::nullopt;
  return obj.substr(start, close - start);
}

std::optional<std::map<std::string, Row>> parse(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  std::map<std::string, Row> rows;
  // Row objects are the {...} groups that carry a "name" field.
  std::size_t pos = 0;
  while ((pos = text.find('{', pos + 1)) != std::string::npos) {
    const std::size_t close = text.find('}', pos);
    if (close == std::string::npos) break;
    const std::string obj = text.substr(pos, close - pos + 1);
    const auto name = string_field(obj, "name");
    if (name) {
      Row r;
      r.events_per_sec = number_field(obj, "events_per_sec").value_or(0.0);
      r.cs_per_sec = number_field(obj, "cs_per_sec").value_or(0.0);
      r.wall_s = number_field(obj, "wall_s").value_or(0.0);
      r.peak_rss_kb = number_field(obj, "peak_rss_kb").value_or(0.0);
      rows[*name] = r;
    }
    pos = close;
  }
  if (rows.empty()) {
    std::fprintf(stderr, "bench_compare: no rows in %s\n", path.c_str());
    return std::nullopt;
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> only;
  std::vector<std::string> exclude;
  double tolerance = 0.25;
  bool warn_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--warn-only") == 0) {
      warn_only = true;
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--exclude") == 0 && i + 1 < argc) {
      exclude.emplace_back(argv[++i]);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.size() != 2 || tolerance <= 0.0 || tolerance >= 1.0) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> "
                 "[--tolerance 0.25] [--warn-only] [--only <substr>]... "
                 "[--exclude <substr>]...\n");
    return 2;
  }

  const auto selected = [&](const std::string& name) {
    const auto matches_any = [&](const std::vector<std::string>& pats) {
      for (const std::string& p : pats)
        if (name.find(p) != std::string::npos) return true;
      return false;
    };
    if (!only.empty() && !matches_any(only)) return false;
    return !matches_any(exclude);  // exclude wins over only
  };

  const auto base = parse(files[0]);
  const auto cur = parse(files[1]);
  if (!base || !cur) return 2;

  int regressions = 0;
  auto compare = [&](const std::string& name, const char* metric,
                     double before, double after) {
    if (before <= 0.0) return;  // metric not applicable to this row
    const double ratio = after / before;
    if (ratio < 1.0 - tolerance) {
      std::printf("REGRESSION  %-36s %-16s %12.1f -> %12.1f  (%.0f%%)\n",
                  name.c_str(), metric, before, after, 100.0 * (ratio - 1.0));
      ++regressions;
    } else if (ratio > 1.0 + tolerance) {
      std::printf("improved    %-36s %-16s %12.1f -> %12.1f  (+%.0f%%)\n",
                  name.c_str(), metric, before, after, 100.0 * (ratio - 1.0));
    } else {
      std::printf("ok          %-36s %-16s %12.1f -> %12.1f\n", name.c_str(),
                  metric, before, after);
    }
  };

  int compared = 0;
  for (const auto& [name, b] : *base) {
    if (!selected(name)) continue;
    ++compared;
    const auto it = cur->find(name);
    if (it == cur->end()) {
      std::printf("missing     %-36s (row absent from current)\n",
                  name.c_str());
      continue;
    }
    compare(name, "events_per_sec", b.events_per_sec, it->second.events_per_sec);
    compare(name, "cs_per_sec", b.cs_per_sec, it->second.cs_per_sec);
    // Informational only — cumulative RSS never gates (see file comment).
    if (b.peak_rss_kb > 0.0 && it->second.peak_rss_kb > 0.0 &&
        std::fabs(it->second.peak_rss_kb - b.peak_rss_kb) / b.peak_rss_kb >
            tolerance) {
      std::printf("info        %-36s %-16s %12.1f -> %12.1f  (not gated)\n",
                  name.c_str(), "peak_rss_kb", b.peak_rss_kb,
                  it->second.peak_rss_kb);
    }
  }
  for (const auto& [name, c] : *cur) {
    if (selected(name) && base->find(name) == base->end())
      std::printf("new         %-36s\n", name.c_str());
  }
  if (compared == 0) {
    // A selection that matches nothing is almost certainly a typo in the
    // CI invocation — fail loudly rather than report a hollow pass.
    std::fprintf(stderr, "bench_compare: selection matched no baseline rows\n");
    return 2;
  }

  if (regressions > 0) {
    std::printf("%d regression(s) beyond %.0f%% tolerance%s\n", regressions,
                tolerance * 100.0, warn_only ? " (warn-only)" : "");
    return warn_only ? 0 : 1;
  }
  std::printf("no regressions beyond %.0f%% tolerance\n", tolerance * 100.0);
  return 0;
}
