#!/usr/bin/env python3
"""End-to-end tests for the gridmutex-lint ratchet.

The self-tests in gridmutex_lint.py prove each rule fires on a seeded
snippet; this script proves the *pipeline* does — that a violation
injected into a real codec TU inside a scratch checkout makes the lint
exit non-zero, that a clean tree passes, and that the baseline ratchet
tolerates exactly the findings it has recorded and nothing more.

Run directly (exit 0/1) or via ctest (lint_ratchet_test).
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO = os.path.realpath(os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                     "..", ".."))
LINT = os.path.join(REPO, "tools", "lint", "gridmutex_lint.py")

FAILURES = []


def check(desc: str, ok: bool, detail: str = "") -> None:
    if ok:
        print(f"ok: {desc}")
    else:
        FAILURES.append(desc)
        print(f"FAIL: {desc}{': ' + detail if detail else ''}",
              file=sys.stderr)


def make_scratch_tree(tmp: str) -> str:
    """A minimal repo copy: one real codec TU + its header, enough for
    every rule to have a surface."""
    root = os.path.join(tmp, "scratch")
    for rel in ("src/mutex", "src/sim", "include/gridmutex/mutex",
                "include/gridmutex/sim", "tools/lint", "build"):
        os.makedirs(os.path.join(root, rel), exist_ok=True)
    for rel in ("src/mutex/suzuki_kasami.cpp",
                "include/gridmutex/mutex/suzuki_kasami.hpp",
                "include/gridmutex/sim/random.hpp"):
        shutil.copy(os.path.join(REPO, rel), os.path.join(root, rel))
    cdb = [{
        "directory": root,
        "file": os.path.join(root, "src/mutex/suzuki_kasami.cpp"),
        "command": "c++ -c src/mutex/suzuki_kasami.cpp",
    }]
    with open(os.path.join(root, "build", "compile_commands.json"), "w") as f:
        json.dump(cdb, f)
    return root


def run_lint(root: str, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, LINT, "--root", root, "--compile-commands",
         os.path.join(root, "build", "compile_commands.json"),
         "--baseline", os.path.join(root, "tools", "lint", "baseline.json"),
         *extra],
        capture_output=True, text=True)


def append(root: str, rel: str, text: str) -> None:
    with open(os.path.join(root, rel), "a") as f:
        f.write(text)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        # 1. The pristine scratch tree (real shipped codec) is clean.
        root = make_scratch_tree(tmp)
        r = run_lint(root)
        check("clean scratch tree passes with no baseline",
              r.returncode == 0, r.stdout + r.stderr)

        # 2. Injected raw-RNG use in a codec TU: lint exits non-zero and
        # names the rule.
        append(root, "src/mutex/suzuki_kasami.cpp",
               "\nstatic std::mt19937 g_totally_not_deterministic{42};\n")
        r = run_lint(root)
        check("injected std::mt19937 fails the run",
              r.returncode == 1 and "rng-discipline" in r.stderr,
              r.stdout + r.stderr)

        # 3. Writing a baseline with the violation present ratchets it in:
        # the same tree now passes...
        r = run_lint(root, "--write-baseline")
        check("baseline write succeeds", r.returncode == 0, r.stderr)
        r = run_lint(root)
        check("baselined finding no longer fails", r.returncode == 0,
              r.stdout + r.stderr)

        # 4. ...but a *new* finding of a different rule still fails.
        append(root, "src/mutex/suzuki_kasami.cpp",
               "\nstatic wire::Writer g_heap_writer(64);\n")
        r = run_lint(root)
        check("new finding on top of baseline still fails",
              r.returncode == 1 and "codec-zero-copy" in r.stderr,
              r.stdout + r.stderr)

        # 4b. Hand-rolled LCG end-to-end: a backoff-jitter shortcut using
        # the PCG multiplier constant must fail even though it never names
        # a <random> engine (fresh scratch tree, empty baseline).
        root = make_scratch_tree(os.path.join(tmp, "t1b"))
        append(root, "src/mutex/suzuki_kasami.cpp",
               "\nstatic std::uint64_t quick_jitter(std::uint64_t s) {\n"
               "  return s * 6364136223846793005ULL + 1442695040888963407ULL;\n"
               "}\n")
        r = run_lint(root)
        check("injected inline-LCG jitter fails the run",
              r.returncode == 1 and "rng-discipline" in r.stderr
              and "LCG" in r.stderr,
              r.stdout + r.stderr)

        # 5. Wall-clock rule end-to-end: a steady_clock read in library
        # code (fresh scratch tree so the baseline is empty again).
        root = make_scratch_tree(os.path.join(tmp, "t2"))
        append(root, "src/mutex/suzuki_kasami.cpp",
               "\n#include <chrono>\n"
               "static auto g_t0 = std::chrono::steady_clock::now();\n")
        r = run_lint(root)
        check("injected steady_clock fails the run",
              r.returncode == 1 and "wall-clock" in r.stderr,
              r.stdout + r.stderr)

        # 6. Switch-exhaustiveness end-to-end: grow the enum in the header
        # without touching the codec's dispatch switch.
        root = make_scratch_tree(os.path.join(tmp, "t3"))
        hdr = os.path.join(root, "include/gridmutex/mutex/suzuki_kasami.hpp")
        with open(hdr) as f:
            text = f.read()
        text = text.replace(
            "kRegenReply = 4,",
            "kRegenReply = 4,\n    kPhantom = 5,", 1)
        with open(hdr, "w") as f:
            f.write(text)
        r = run_lint(root)
        check("new enumerator without a case fails the run",
              r.returncode == 1 and "switch-exhaustive" in r.stderr
              and "kPhantom" in r.stderr,
              r.stdout + r.stderr)

        # 7. clang-tidy ratchet path: a synthetic log with one diagnostic
        # fails against the committed empty baseline, passes after
        # --write-baseline into a scratch copy.
        root = make_scratch_tree(os.path.join(tmp, "t4"))
        log = os.path.join(root, "tidy.log")
        with open(log, "w") as f:
            f.write(os.path.join(root, "src/mutex/suzuki_kasami.cpp")
                    + ":10:5: warning: do not use bugprone things "
                    "[bugprone-use-after-move]\n")
        tidy_base = os.path.join(root, "tools/lint/clang_tidy_baseline.json")
        r = subprocess.run([sys.executable, LINT, "--root", root,
                            "--tidy-input", log,
                            "--tidy-baseline", tidy_base],
                           capture_output=True, text=True)
        check("new clang-tidy diagnostic fails the ratchet",
              r.returncode == 1 and "bugprone-use-after-move" in r.stderr,
              r.stdout + r.stderr)
        r = subprocess.run([sys.executable, LINT, "--root", root,
                            "--tidy-input", log,
                            "--tidy-baseline", tidy_base,
                            "--write-baseline"],
                           capture_output=True, text=True)
        check("clang-tidy baseline write succeeds", r.returncode == 0,
              r.stderr)
        r = subprocess.run([sys.executable, LINT, "--root", root,
                            "--tidy-input", log,
                            "--tidy-baseline", tidy_base],
                           capture_output=True, text=True)
        check("baselined clang-tidy diagnostic passes", r.returncode == 0,
              r.stdout + r.stderr)

    if FAILURES:
        print(f"test_lint: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("test_lint: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
