#!/usr/bin/env python3
"""gridmutex-lint: project-invariant static checks over the C++ tree.

Four rules no generic tool knows, each encoding a contract the codebase
relies on (see docs/ANALYSIS.md, "Static analysis layers"):

  switch-exhaustive   Every algorithm codec's on_message() switch covers
                      every enumerator of its MsgType enum, and its
                      `default:` arm does nothing but call
                      throw_unknown_message(). A new message type added to
                      the header without a decode arm is a silent protocol
                      hole; this rule turns it into a lint failure.

  codec-zero-copy     Algorithm codecs (src/mutex/*.cpp) never copy payload
                      bytes and never construct heap-mode wire::Writers.
                      Encoding goes through MutexContext::writer() /
                      send_writer() / send_shared(), which borrow pooled
                      blocks (the PR 5 zero-copy rules); empty-payload sends
                      must pass a literal `{}`.

  rng-discipline      No raw <random> engines or C rand()/srand() anywhere,
                      and no hand-rolled inline LCGs: the multiplier
                      constants of the classic generators (glibc's
                      1103515245, PCG's 6364136223846793005, Vigna's
                      2862933555777941757 — decimal or hex, any suffix) are
                      flagged wherever they appear outside sim/random.*.
                      All randomness flows through gmx::Rng streams
                      (sim/random.hpp), which is what makes a run
                      reproducible from (config, seed); an inline LCG next
                      to a backoff/jitter path silently forks the draw
                      sequence and breaks bit-identical replays.

  wall-clock          No std::chrono::{system,steady,high_resolution}_clock
                      in library code (include/, src/) outside bench/, rt/
                      and workload/thread_pool.* — simulated time comes from
                      the DES clock, and a stray wall-clock read breaks
                      bit-identical trace hashes.

The file set is derived from the exported compile_commands.json (all
in-repo translation units) plus every header under include/. Analysis is
token-level: comments and string/char literals are stripped first, then
rules run on the bare code with brace/paren matching — deterministic,
dependency-free, and identical in any CI image (the container has no
libclang; an AST backend can be slotted in behind the same rule interface).

Ratchet mode (the default) compares findings against a committed baseline
keyed by (rule, file): any *new* finding fails the run, disappearing
findings are reported as improvements and never block. `--write-baseline`
regenerates the file after an accepted change. `--self-test` runs every
rule against seeded violations (mutation-style: a rule that has never been
seen to fire proves nothing) and clean counter-examples.

Exit codes: 0 clean/ratchet-ok, 1 new findings or self-test failure,
2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Dict, List, NamedTuple, Optional, Tuple


class Finding(NamedTuple):
    rule: str
    path: str  # repo-relative
    line: int
    message: str


# --------------------------------------------------------------------------
# Lexical preparation
# --------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literal *contents*, preserving
    every newline (so offsets map to the same line numbers) and the quote
    characters themselves (so token boundaries survive). Handles //, /* */,
    "..." with escapes, '...' with escapes, and R"delim(...)delim" raw
    strings."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "R" and nxt == '"' and (i == 0 or not (text[i - 1].isalnum() or text[i - 1] == "_")):
            m = re.match(r'R"([^()\\\s]{0,16})\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j == -1 else j + len(close)
                out.append('""')
                out.append("".join("\n" for ch in text[i:j] if ch == "\n"))
                i = j
            else:
                out.append(c)
                i += 1
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                elif text[j] == quote:
                    j += 1
                    break
                elif text[j] == "\n":  # unterminated (macro trickery): bail
                    break
                else:
                    j += 1
            body = text[i:j]
            out.append(quote + "".join("\n" if ch == "\n" else " " for ch in body[1:-1]) + quote)
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def match_bracket(text: str, open_pos: int) -> int:
    """Returns the index just past the bracket matching text[open_pos]
    (one of ( [ {). Input must already be comment/string-stripped."""
    pairs = {"(": ")", "[": "]", "{": "}"}
    op = text[open_pos]
    cl = pairs[op]
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == op:
            depth += 1
        elif text[i] == cl:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def split_top_level_args(arglist: str) -> List[str]:
    """Splits `a, b, {c, d}` on top-level commas."""
    args, depth, start = [], 0, 0
    for i, ch in enumerate(arglist):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            args.append(arglist[start:i])
            start = i + 1
    tail = arglist[start:]
    if tail.strip() or args:
        args.append(tail)
    return [a.strip() for a in args]


# --------------------------------------------------------------------------
# Rule: switch-exhaustive
# --------------------------------------------------------------------------

ENUM_RE = re.compile(r"\benum\s+MsgType\b[^{]*\{")
ENUMERATOR_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:=[^,}]*)?(?:,|$)")


def parse_msgtype_enumerators(header_text: str) -> List[str]:
    stripped = strip_comments_and_strings(header_text)
    m = ENUM_RE.search(stripped)
    if not m:
        return []
    open_pos = m.end() - 1
    body = stripped[m.end():match_bracket(stripped, open_pos) - 1]
    names = []
    for entry in body.split(","):
        em = re.match(r"\s*([A-Za-z_]\w*)", entry)
        if em:
            names.append(em.group(1))
    return names


def rule_switch_exhaustive(path: str, text: str, header_text: Optional[str]) -> List[Finding]:
    """Checks the on_message() dispatch switch of one codec TU against the
    MsgType enum in its header."""
    findings: List[Finding] = []
    if header_text is None:
        return findings
    enumerators = parse_msgtype_enumerators(header_text)
    if not enumerators:
        return findings
    stripped = strip_comments_and_strings(text)

    m = re.search(r"::on_message\s*\(", stripped)
    if m is None:
        findings.append(Finding("switch-exhaustive", path, 1,
                                "codec header declares MsgType but TU defines no on_message()"))
        return findings
    params_end = match_bracket(stripped, m.end() - 1)
    body_open = stripped.find("{", params_end)
    if body_open == -1:
        return findings
    body_close = match_bracket(stripped, body_open)
    body = stripped[body_open:body_close]
    body_line0 = line_of(stripped, body_open)

    sm = re.search(r"\bswitch\s*\(\s*type\s*\)\s*\{", body)
    if sm is None:
        findings.append(Finding("switch-exhaustive", path, body_line0,
                                "on_message() has no `switch (type)` dispatch"))
        return findings
    sw_open = sm.end() - 1
    sw_body = body[sw_open + 1:match_bracket(body, sw_open) - 1]
    sw_line0 = body_line0 + body.count("\n", 0, sw_open)

    cases = set(re.findall(r"\bcase\s+([A-Za-z_]\w*)\s*:", sw_body))
    for name in enumerators:
        if name not in cases:
            findings.append(Finding(
                "switch-exhaustive", path, sw_line0,
                f"MsgType::{name} has no case in the on_message() switch"))
    dm = re.search(r"\bdefault\s*:", sw_body)
    if dm is None:
        findings.append(Finding(
            "switch-exhaustive", path, sw_line0,
            "on_message() switch has no default: -> throw_unknown_message arm"))
    else:
        nxt = re.compile(r"\bcase\s+[A-Za-z_]\w*\s*:").search(sw_body, dm.end())
        arm = sw_body[dm.end():nxt.start() if nxt else len(sw_body)]
        if "throw_unknown_message" not in arm:
            findings.append(Finding(
                "switch-exhaustive", path,
                sw_line0 + sw_body.count("\n", 0, dm.start()),
                "default: arm must only call throw_unknown_message(type)"))
        # The arm must not swallow the unknown type: nothing but the throw
        # helper (plus break/;) is allowed.
        residue = re.sub(r"throw_unknown_message\s*\([^)]*\)|[\s;]|break", "", arm)
        if residue:
            findings.append(Finding(
                "switch-exhaustive", path,
                sw_line0 + sw_body.count("\n", 0, dm.start()),
                f"default: arm does extra work besides throw_unknown_message: `{residue[:40]}`"))
    return findings


# --------------------------------------------------------------------------
# Rule: codec-zero-copy
# --------------------------------------------------------------------------

# MutexContext/endpoint plumbing legitimately owns Writer/Payload
# mechanics; every other TU in src/mutex/ is a codec and must not.
CODEC_EXEMPT = {"algorithm.cpp", "endpoint.cpp"}

WRITER_DECL_RE = re.compile(r"\b(?:wire::)?Writer\s+([A-Za-z_]\w*)\s*[({=]")
TAKE_RE = re.compile(r"\.\s*take\s*\(")
PAYLOAD_RE = re.compile(r"\bPayload\b")
CTX_SEND_RE = re.compile(r"\bctx\s*\(\s*\)\s*\.\s*send\s*\(")


def rule_codec_zero_copy(path: str, text: str) -> List[Finding]:
    findings: List[Finding] = []
    stripped = strip_comments_and_strings(text)

    for m in WRITER_DECL_RE.finditer(stripped):
        stmt_end = stripped.find(";", m.start())
        stmt = stripped[m.start():stmt_end if stmt_end != -1 else len(stripped)]
        if ".writer(" not in stmt.replace(" ", ""):
            findings.append(Finding(
                "codec-zero-copy", path, line_of(stripped, m.start()),
                f"Writer `{m.group(1)}` not obtained from ctx().writer() "
                "(heap-mode Writers are forbidden in codecs)"))
    for m in TAKE_RE.finditer(stripped):
        findings.append(Finding(
            "codec-zero-copy", path, line_of(stripped, m.start()),
            ".take() materializes a byte copy; pass the handle through "
            "send_writer()/send_shared() instead"))
    for m in PAYLOAD_RE.finditer(stripped):
        # The one blessed Payload in a codec is the encode-once broadcast
        # handle: `const Payload req = w.take_payload();` (moves the pooled
        # block, no byte copy) later fanned out via send_shared().
        stmt_end = stripped.find(";", m.start())
        stmt = stripped[m.start():stmt_end if stmt_end != -1 else len(stripped)]
        if "take_payload(" not in stmt.replace(" ", ""):
            findings.append(Finding(
                "codec-zero-copy", path, line_of(stripped, m.start()),
                "Payload in a codec must come from Writer::take_payload() "
                "(anything else copies bytes or bypasses the pool)"))
    for m in CTX_SEND_RE.finditer(stripped):
        open_pos = m.end() - 1
        args = split_top_level_args(stripped[open_pos + 1:match_bracket(stripped, open_pos) - 1])
        if len(args) != 3 or args[2] != "{}":
            findings.append(Finding(
                "codec-zero-copy", path, line_of(stripped, m.start()),
                "ctx().send() in a codec must pass an empty `{}` payload; "
                "encoded payloads go through send_writer()/send_shared()"))
    return findings


# --------------------------------------------------------------------------
# Rule: rng-discipline
# --------------------------------------------------------------------------

RNG_ALLOWED = {
    "include/gridmutex/sim/random.hpp",
    "src/sim/random.cpp",
}

# Multiplier constants of the classic LCG/PCG generators: glibc rand()'s
# 1103515245 (0x41C64E6D), the PCG/Knuth MMIX multiplier
# 6364136223846793005 (0x5851F42D4C957F2D), and Vigna's splitmix-style
# 2862933555777941757 (0x27BB2EE687B0B0FD). One of these appearing in code
# is a hand-rolled inline generator — exactly the kind of "just a little
# jitter" shortcut a backoff path invites — and it draws outside the
# gmx::Rng stream accounting. Integer suffixes (u/l/ull in any case/order)
# are part of the token so `...ULL` still matches.
LCG_CONST_RE = re.compile(
    r"(?<![\w.])(?:1103515245|6364136223846793005|2862933555777941757|"
    r"0x41c64e6d|0x5851f42d4c957f2d|0x27bb2ee687b0b0fd)"
    r"(?:u?l{0,2}|l{1,2}u?)?(?![\w.])",
    re.IGNORECASE)

RNG_PATTERNS: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"\bstd::mt19937(?:_64)?\b"), "raw std::mt19937 engine"),
    (re.compile(r"\bstd::minstd_rand0?\b"), "raw std::minstd_rand engine"),
    (re.compile(r"\bstd::default_random_engine\b"), "raw std::default_random_engine"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device (non-reproducible entropy)"),
    (re.compile(r"(?<![\w:.>])s?rand\s*\("), "C rand()/srand()"),
    (re.compile(r"#\s*include\s*<random>"), "#include <random>"),
    (LCG_CONST_RE, "hand-rolled LCG multiplier constant (inline generator)"),
]


def rule_rng_discipline(path: str, text: str) -> List[Finding]:
    if path in RNG_ALLOWED:
        return []
    stripped = strip_comments_and_strings(text)
    findings = []
    for pat, what in RNG_PATTERNS:
        for m in pat.finditer(stripped):
            findings.append(Finding(
                "rng-discipline", path, line_of(stripped, m.start()),
                f"{what}: all randomness must flow through gmx::Rng streams "
                "(sim/random.hpp)"))
    return findings


# --------------------------------------------------------------------------
# Rule: wall-clock
# --------------------------------------------------------------------------

CLOCK_RE = re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b")


def wall_clock_in_scope(path: str) -> bool:
    """Library code only: include/ and src/. Tests, tools and examples are
    drivers, not simulation logic."""
    if not (path.startswith("include/") or path.startswith("src/")):
        return False
    if "/rt/" in path:
        return False  # the real-time runtime is wall-clock by definition
    if "/transport/" in path:
        return False  # real sockets run on real time, like rt/
    if path.startswith("bench/"):
        return False
    if path in ("include/gridmutex/workload/thread_pool.hpp",
                "src/workload/thread_pool.cpp"):
        return False  # pool wait/wakeup may use timed waits
    return True


def rule_wall_clock(path: str, text: str) -> List[Finding]:
    if not wall_clock_in_scope(path):
        return []
    stripped = strip_comments_and_strings(text)
    findings = []
    for m in CLOCK_RE.finditer(stripped):
        findings.append(Finding(
            "wall-clock", path, line_of(stripped, m.start()),
            f"{m.group(0)} in deterministic library code: simulated time "
            "comes from Simulator::now()"))
    return findings


# --------------------------------------------------------------------------
# File discovery
# --------------------------------------------------------------------------

def discover_files(root: str, compile_commands: str) -> List[str]:
    """Repo-relative paths of every in-repo TU in compile_commands.json
    plus every header under include/."""
    files = set()
    with open(compile_commands, "r", encoding="utf-8") as f:
        for entry in json.load(f):
            p = entry["file"]
            if not os.path.isabs(p):
                p = os.path.join(entry.get("directory", ""), p)
            p = os.path.realpath(p)
            rel = os.path.relpath(p, root)
            if rel.startswith("..") or rel.startswith("build"):
                continue  # generated / external TU
            files.add(rel)
    inc_root = os.path.join(root, "include")
    for dirpath, _dirs, names in os.walk(inc_root):
        for name in names:
            if name.endswith(".hpp") or name.endswith(".h"):
                files.add(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(files)


def codec_header_for(root: str, rel_cpp: str) -> Optional[str]:
    base = os.path.splitext(os.path.basename(rel_cpp))[0]
    hdr = os.path.join(root, "include", "gridmutex", "mutex", base + ".hpp")
    if os.path.exists(hdr):
        with open(hdr, "r", encoding="utf-8") as f:
            return f.read()
    return None


def run_rules(root: str, files: List[str]) -> List[Finding]:
    findings: List[Finding] = []
    for rel in files:
        try:
            with open(os.path.join(root, rel), "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"gridmutex-lint: cannot read {rel}: {e}", file=sys.stderr)
            continue
        if rel.startswith("src/mutex/") and rel.endswith(".cpp"):
            name = os.path.basename(rel)
            if name not in CODEC_EXEMPT and name != "registry.cpp":
                findings.extend(rule_switch_exhaustive(
                    rel, text, codec_header_for(root, rel)))
            if name not in CODEC_EXEMPT:
                findings.extend(rule_codec_zero_copy(rel, text))
        findings.extend(rule_rng_discipline(rel, text))
        findings.extend(rule_wall_clock(rel, text))
    return sorted(findings)


# --------------------------------------------------------------------------
# Ratchet
# --------------------------------------------------------------------------

def findings_to_counts(findings: List[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for f in findings:
        key = f"{f.rule}|{f.path}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path: str) -> Dict[str, int]:
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    return {str(k): int(v) for k, v in data.get("findings", {}).items()}


def write_baseline(path: str, counts: Dict[str, int]) -> None:
    doc = {
        "comment": "gridmutex-lint ratchet baseline: (rule|file) -> count. "
                   "Regenerate with tools/lint/run.sh --write-baseline after "
                   "an accepted change; new findings above these counts fail CI.",
        "findings": dict(sorted(counts.items())),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def ratchet(findings: List[Finding], baseline: Dict[str, int]) -> int:
    counts = findings_to_counts(findings)
    regressed = {k: (baseline.get(k, 0), v) for k, v in counts.items()
                 if v > baseline.get(k, 0)}
    improved = {k: (v, counts.get(k, 0)) for k, v in baseline.items()
                if counts.get(k, 0) < v}
    if improved:
        print("gridmutex-lint: improvements vs baseline "
              "(run --write-baseline to lock in):")
        for k, (old, new) in sorted(improved.items()):
            print(f"  {k}: {old} -> {new}")
    if not regressed:
        total = sum(counts.values())
        print(f"gridmutex-lint: OK ({total} finding(s), all within baseline)")
        return 0
    print("gridmutex-lint: NEW findings vs baseline:", file=sys.stderr)
    for f in findings:
        key = f"{f.rule}|{f.path}"
        if key in regressed:
            print(f"  {f.path}:{f.line}: [{f.rule}] {f.message}", file=sys.stderr)
    print(f"gridmutex-lint: FAIL ({len(regressed)} regressed (rule, file) "
          "key(s))", file=sys.stderr)
    return 1


# --------------------------------------------------------------------------
# clang-tidy ratchet (same mechanism, different producer)
# --------------------------------------------------------------------------

TIDY_LINE_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):\d+:\s+(?:warning|error):\s+"
    r".*\[(?P<check>[\w.,-]+)\]\s*$")


def tidy_counts_from_log(log_path: str, root: str) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    with open(log_path, "r", encoding="utf-8", errors="replace") as f:
        for line in f:
            m = TIDY_LINE_RE.match(line.strip())
            if not m:
                continue
            p = m.group("path")
            if os.path.isabs(p):
                p = os.path.relpath(os.path.realpath(p), root)
            if p.startswith(".."):
                continue  # system header noise
            key = f"{m.group('check')}|{p}"
            counts[key] = counts.get(key, 0) + 1
    return counts


def tidy_ratchet(log_path: str, baseline_path: str, root: str,
                 write: bool) -> int:
    counts = tidy_counts_from_log(log_path, root)
    if write:
        write_baseline(baseline_path, counts)
        print(f"clang-tidy ratchet: baseline written "
              f"({sum(counts.values())} finding(s))")
        return 0
    baseline = load_baseline(baseline_path)
    regressed = {k: (baseline.get(k, 0), v) for k, v in counts.items()
                 if v > baseline.get(k, 0)}
    if not regressed:
        print(f"clang-tidy ratchet: OK ({sum(counts.values())} finding(s), "
              "all within baseline)")
        return 0
    print("clang-tidy ratchet: NEW diagnostics vs baseline:", file=sys.stderr)
    for k, (old, new) in sorted(regressed.items()):
        print(f"  {k}: {old} -> {new}", file=sys.stderr)
    return 1


# --------------------------------------------------------------------------
# Self-test: every rule must fire on a seeded violation and stay quiet on
# the clean counter-example.
# --------------------------------------------------------------------------

SELF_TESTS = [
    # (rule function description, runner, expected finding count)
    ("switch-exhaustive fires on missing case", lambda: rule_switch_exhaustive(
        "src/mutex/demo.cpp",
        "void DemoMutex::on_message(int f, std::uint16_t type, wire::Reader p) {"
        "  switch (type) { case kRequest: break; default: throw_unknown_message(type); } }",
        "class DemoMutex { enum MsgType : std::uint16_t { kRequest = 1, kToken = 2, }; };"),
     1),
    ("switch-exhaustive fires on missing default", lambda: rule_switch_exhaustive(
        "src/mutex/demo.cpp",
        "void DemoMutex::on_message(int f, std::uint16_t type, wire::Reader p) {"
        "  switch (type) { case kRequest: break; } }",
        "class DemoMutex { enum MsgType : std::uint16_t { kRequest = 1, }; };"),
     1),
    ("switch-exhaustive fires on a swallowing default", lambda: rule_switch_exhaustive(
        "src/mutex/demo.cpp",
        "void DemoMutex::on_message(int f, std::uint16_t type, wire::Reader p) {"
        "  switch (type) { case kRequest: break; default: break; } }",
        "class DemoMutex { enum MsgType : std::uint16_t { kRequest = 1, }; };"),
     1),
    ("switch-exhaustive quiet on exhaustive switch", lambda: rule_switch_exhaustive(
        "src/mutex/demo.cpp",
        "void DemoMutex::on_message(int f, std::uint16_t type, wire::Reader p) {"
        "  switch (type) { case kRequest: break; case kToken: break;"
        "  default: throw_unknown_message(type); } }",
        "class DemoMutex { enum MsgType : std::uint16_t { kRequest = 1, kToken = 2, }; };"),
     0),
    ("switch-exhaustive ignores commented-out cases", lambda: rule_switch_exhaustive(
        "src/mutex/demo.cpp",
        "void DemoMutex::on_message(int f, std::uint16_t type, wire::Reader p) {"
        "  switch (type) { /* case kToken: */ case kRequest: break;"
        "  default: throw_unknown_message(type); } }",
        "class DemoMutex { enum MsgType : std::uint16_t { kRequest = 1, kToken = 2, }; };"),
     1),
    ("codec-zero-copy fires on heap Writer", lambda: rule_codec_zero_copy(
        "src/mutex/demo.cpp", "void f() { wire::Writer w(64); w.varint(1); }"),
     1),
    ("codec-zero-copy fires on .take()", lambda: rule_codec_zero_copy(
        "src/mutex/demo.cpp", "void f() { auto bytes = w.take(); }"),
     1),
    ("codec-zero-copy fires on Payload copy", lambda: rule_codec_zero_copy(
        "src/mutex/demo.cpp", "void f() { Payload p(other); }"),
     1),
    ("codec-zero-copy quiet on encode-once take_payload",
     lambda: rule_codec_zero_copy(
        "src/mutex/demo.cpp",
        "void f() { wire::Writer w = ctx().writer(4);"
        " const Payload req = w.take_payload(); }"),
     0),
    ("codec-zero-copy fires on payloadful ctx().send", lambda: rule_codec_zero_copy(
        "src/mutex/demo.cpp", "void f() { ctx().send(1, kTok, payload.span()); }"),
     1),
    ("codec-zero-copy quiet on pooled writer + empty send", lambda: rule_codec_zero_copy(
        "src/mutex/demo.cpp",
        "void f() { wire::Writer w = ctx().writer(4); w.varint(1);"
        " ctx().send_writer(1, kTok, std::move(w)); ctx().send(2, kAck, {}); }"),
     0),
    ("rng-discipline fires on std::mt19937", lambda: rule_rng_discipline(
        "src/sim/bad.cpp", "static std::mt19937 g_bad{42};"),
     1),
    ("rng-discipline fires on rand()", lambda: rule_rng_discipline(
        "src/sim/bad.cpp", "int roll() { return rand() % 6; }"),
     1),
    ("rng-discipline quiet in sim/random.hpp itself", lambda: rule_rng_discipline(
        "include/gridmutex/sim/random.hpp", "// engine notes: std::mt19937"),
     0),
    ("rng-discipline quiet on gmx::Rng and mentions in comments",
     lambda: rule_rng_discipline(
        "src/sim/good.cpp", "// not std::mt19937\nRng rng(7); rng.next_u64();"),
     0),
    ("rng-discipline fires on glibc LCG constant", lambda: rule_rng_discipline(
        "src/service/bad_backoff.cpp",
        "std::uint32_t jitter(std::uint32_t s) {"
        " return s * 1103515245u + 12345u; }"),
     1),
    ("rng-discipline fires on PCG multiplier with ULL suffix",
     lambda: rule_rng_discipline(
        "src/service/bad_backoff.cpp",
        "state = state * 6364136223846793005ULL + increment;"),
     1),
    ("rng-discipline fires on hex LCG constant", lambda: rule_rng_discipline(
        "src/service/bad_backoff.cpp", "x *= 0x5851F42D4C957F2D;"),
     1),
    ("rng-discipline fires on Vigna multiplier", lambda: rule_rng_discipline(
        "src/service/bad_backoff.cpp", "z = z * 2862933555777941757ull + 3;"),
     1),
    ("rng-discipline quiet on a near-miss constant", lambda: rule_rng_discipline(
        "src/service/good_backoff.cpp", "const auto cap = 1103515246u;"),
     0),
    ("rng-discipline quiet on LCG constant inside sim/random.cpp",
     lambda: rule_rng_discipline(
        "src/sim/random.cpp", "s = s * 6364136223846793005ull + 1;"),
     0),
    ("wall-clock fires on steady_clock in library code", lambda: rule_wall_clock(
        "src/sim/bad.cpp", "auto t = std::chrono::steady_clock::now();"),
     1),
    ("wall-clock quiet in rt/", lambda: rule_wall_clock(
        "src/rt/runtime.cpp", "auto t = std::chrono::steady_clock::now();"),
     0),
    ("wall-clock quiet in transport/", lambda: rule_wall_clock(
        "src/transport/udp.cpp", "auto t = std::chrono::steady_clock::now();"),
     0),
    ("wall-clock quiet in transport/ headers", lambda: rule_wall_clock(
        "include/gridmutex/transport/endpoint.hpp",
        "std::chrono::steady_clock::time_point epoch_;"),
     0),
    ("wall-clock still fires in mutex/ with transport allowlisted",
     lambda: rule_wall_clock(
        "src/mutex/naimi_trehel.cpp",
        "auto t = std::chrono::steady_clock::now();"),
     1),
    ("wall-clock still fires in service/ with transport allowlisted",
     lambda: rule_wall_clock(
        "src/service/lock_service.cpp",
        "auto t = std::chrono::system_clock::now();"),
     1),
    ("wall-clock quiet in bench/", lambda: rule_wall_clock(
        "bench/perf_suite.cpp", "auto t = std::chrono::steady_clock::now();"),
     0),
    ("wall-clock quiet outside library code", lambda: rule_wall_clock(
        "tests/rt_runtime_test.cpp", "std::chrono::steady_clock::now();"),
     0),
]


def self_test() -> int:
    failures = 0
    for desc, runner, expected in SELF_TESTS:
        got = runner()
        if len(got) != expected:
            failures += 1
            print(f"SELF-TEST FAIL: {desc}: expected {expected} finding(s), "
                  f"got {len(got)}", file=sys.stderr)
            for f in got:
                print(f"    {f.path}:{f.line}: [{f.rule}] {f.message}",
                      file=sys.stderr)
        else:
            print(f"self-test ok: {desc}")
    if failures:
        print(f"gridmutex-lint --self-test: {failures} failure(s)",
              file=sys.stderr)
        return 1
    print(f"gridmutex-lint --self-test: all {len(SELF_TESTS)} checks passed")
    return 0


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--compile-commands", default=None,
                    help="path to compile_commands.json "
                         "(default: <root>/build/compile_commands.json)")
    ap.add_argument("--baseline", default=None,
                    help="ratchet baseline JSON "
                         "(default: tools/lint/baseline.json)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="regenerate the baseline from current findings")
    ap.add_argument("--self-test", action="store_true",
                    help="run each rule against seeded violations and exit")
    ap.add_argument("--list-files", action="store_true",
                    help="print the discovered file set and exit")
    ap.add_argument("--tidy-input", default=None,
                    help="ratchet a clang-tidy log instead of running rules")
    ap.add_argument("--tidy-baseline", default=None,
                    help="clang-tidy ratchet baseline JSON "
                         "(default: tools/lint/clang_tidy_baseline.json)")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    root = os.path.realpath(
        args.root or os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                  "..", ".."))
    lint_dir = os.path.join(root, "tools", "lint")

    if args.tidy_input:
        baseline = args.tidy_baseline or os.path.join(
            lint_dir, "clang_tidy_baseline.json")
        return tidy_ratchet(args.tidy_input, baseline, root,
                            args.write_baseline)

    cc = args.compile_commands or os.path.join(root, "build",
                                               "compile_commands.json")
    if not os.path.exists(cc):
        print(f"gridmutex-lint: {cc} not found — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 2
    files = discover_files(root, cc)
    if args.list_files:
        print("\n".join(files))
        return 0
    findings = run_rules(root, files)

    baseline_path = args.baseline or os.path.join(lint_dir, "baseline.json")
    if args.write_baseline:
        write_baseline(baseline_path, findings_to_counts(findings))
        print(f"gridmutex-lint: baseline written "
              f"({len(findings)} finding(s) across {len(files)} files)")
        return 0
    return ratchet(findings, load_baseline(baseline_path))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
