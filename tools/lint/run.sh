#!/usr/bin/env bash
# Runs the full static-analysis ratchet exactly as CI does:
#
#   1. gridmutex-lint self-tests (every rule proven live on a seeded
#      violation before it is trusted on the tree);
#   2. gridmutex-lint over the exported compilation database, ratcheted
#      against tools/lint/baseline.json;
#   3. clang-tidy (if installed) over all first-party TUs, ratcheted
#      against tools/lint/clang_tidy_baseline.json.
#
# Usage:
#   tools/lint/run.sh [BUILD_DIR]                 # check (default: build)
#   tools/lint/run.sh [BUILD_DIR] --write-baseline  # accept current findings
#
# The build dir must have been configured by this repo's CMakeLists (it
# always exports compile_commands.json). Exit code is non-zero on any new
# finding.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
BUILD_DIR="${1:-build}"
case "${BUILD_DIR}" in --*) BUILD_DIR=build ;; esac
WRITE=""
for arg in "$@"; do
  [[ "${arg}" == "--write-baseline" ]] && WRITE="--write-baseline"
done

CDB="${ROOT}/${BUILD_DIR}/compile_commands.json"
if [[ ! -f "${CDB}" ]]; then
  echo "tools/lint/run.sh: ${CDB} not found — run cmake -B ${BUILD_DIR} -S . first" >&2
  exit 2
fi

echo "=== gridmutex-lint: self-tests ==="
python3 "${ROOT}/tools/lint/gridmutex_lint.py" --self-test

echo "=== gridmutex-lint: tree (ratchet vs tools/lint/baseline.json) ==="
python3 "${ROOT}/tools/lint/gridmutex_lint.py" \
  --root "${ROOT}" --compile-commands "${CDB}" ${WRITE}

if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== clang-tidy (ratchet vs tools/lint/clang_tidy_baseline.json) ==="
  TIDY_LOG="$(mktemp)"
  trap 'rm -f "${TIDY_LOG}"' EXIT
  # First-party TUs only: everything the database lists under src/, tools/,
  # bench/ and examples/ (tests are gtest-macro heavy and not part of the
  # tidy gate; .clang-tidy's HeaderFilterRegex scopes header diagnostics).
  mapfile -t TUS < <(python3 - "$CDB" "$ROOT" <<'EOF'
import json, os, sys
cdb, root = sys.argv[1], sys.argv[2]
for e in json.load(open(cdb)):
    p = os.path.realpath(os.path.join(e.get("directory", ""), e["file"])
                         if not os.path.isabs(e["file"]) else e["file"])
    rel = os.path.relpath(p, root)
    if rel.startswith(("src/", "tools/", "bench/", "examples/")):
        print(p)
EOF
)
  # || true: clang-tidy exits non-zero on any diagnostic; the ratchet below
  # is the gate, so pre-existing baselined findings must not abort the run.
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "${ROOT}/${BUILD_DIR}" "${TUS[@]}" \
      >"${TIDY_LOG}" 2>/dev/null || true
  else
    clang-tidy -quiet -p "${ROOT}/${BUILD_DIR}" "${TUS[@]}" \
      >"${TIDY_LOG}" 2>/dev/null || true
  fi
  python3 "${ROOT}/tools/lint/gridmutex_lint.py" \
    --root "${ROOT}" --tidy-input "${TIDY_LOG}" ${WRITE}
else
  echo "=== clang-tidy: not installed, skipping (CI runs it) ==="
fi

echo "static-analysis: all gates passed"
