// Shared flag grammar for the lockd tool family (lockd, lockctl,
// xvalidate). Every tool accepts the same grid-shape flags so a grid
// launched by one tool can be addressed by another:
//
//   --clusters N --apps N --locks K --intra ALGO --inter ALGO
//   --placement roundrobin|hash --seed S
//
// and the campaign-driving tools additionally share the open-loop flags:
//
//   --rate R --window-sec W --zipf S --hold-ms H
//   --deadline-ms D --time-scale X
//
// Node address lists are "ip:port,ip:port,..." in node-id order.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gridmutex/transport/campaign.hpp"
#include "gridmutex/transport/node.hpp"

namespace lockd_flags {

inline std::uint64_t to_u64(std::string_view v) {
  return std::strtoull(std::string(v).c_str(), nullptr, 10);
}
inline std::uint32_t to_u32(std::string_view v) {
  return std::uint32_t(to_u64(v));
}
inline double to_f64(std::string_view v) {
  return std::strtod(std::string(v).c_str(), nullptr);
}

/// Consumes one "--key value" pair into the grid config; false if the key
/// is not a grid flag.
inline bool parse_grid_flag(gmx::transport::GridConfig& grid,
                            std::string_view key, std::string_view val) {
  if (key == "--clusters") grid.clusters = to_u32(val);
  else if (key == "--apps") grid.apps_per_cluster = to_u32(val);
  else if (key == "--locks") grid.locks = to_u32(val);
  else if (key == "--intra") grid.intra_algorithm = std::string(val);
  else if (key == "--inter") grid.inter_algorithm = std::string(val);
  else if (key == "--placement") grid.placement = gmx::parse_placement(val);
  else if (key == "--seed") grid.seed = to_u64(val);
  else return false;
  return true;
}

/// Consumes one "--key value" pair into the campaign config (open-loop
/// shape plus the transport-only knobs); false if not a campaign flag.
inline bool parse_campaign_flag(gmx::transport::CampaignConfig& cc,
                                std::string_view key, std::string_view val) {
  if (parse_grid_flag(cc.grid, key, val)) return true;
  if (key == "--rate") cc.open_loop.arrivals_per_sec = to_f64(val);
  else if (key == "--window-sec")
    cc.open_loop.window = gmx::SimDuration::sec_f(to_f64(val));
  else if (key == "--zipf") cc.open_loop.zipf_s = to_f64(val);
  else if (key == "--hold-ms")
    cc.open_loop.hold = gmx::SimDuration::ms_f(to_f64(val));
  else if (key == "--deadline-ms") cc.deadline_ms = to_u32(val);
  else if (key == "--time-scale") cc.time_scale = to_f64(val);
  else if (key == "--retry-ms") cc.retry_ms = to_u32(val);
  else return false;
  return true;
}

/// "ip:port,ip:port,..." in node-id order; nullopt on malformed input.
inline std::optional<std::vector<gmx::transport::PeerAddr>> parse_nodes(
    std::string_view list) {
  std::vector<gmx::transport::PeerAddr> nodes;
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view item = list.substr(0, comma);
    const auto addr = gmx::transport::PeerAddr::parse(item);
    if (!addr) return std::nullopt;
    nodes.push_back(*addr);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  return nodes;
}

}  // namespace lockd_flags
