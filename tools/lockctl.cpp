// lockctl — control-plane CLI for a lockd grid.
//
//   $ lockctl --nodes 127.0.0.1:19000,...  ping [--wait-sec 15]
//   $ lockctl --nodes ...                  start
//   $ lockctl --nodes ... acquire --target 1 --lock 0 [--deadline-ms D]
//   $ lockctl --nodes ... release --target 1 --lock 0 --req R
//   $ lockctl --nodes ...                  stats
//   $ lockctl --nodes ... campaign [grid flags] [campaign flags]
//   $ lockctl --nodes ...                  shutdown
//
// `start` pushes the --nodes address table to every daemon (kPeers) and
// then starts their coordinators — run it once, after `ping` confirms the
// whole grid is up. `campaign` replays the simulator's open-loop trace
// (grid flags must match the daemons' launch flags), prints the result,
// cross-checks the daemons' kStats accounting closure
// (arrivals == grants + sheds + deadline_misses, releases == grants) and
// exits non-zero on any safety violation or closure mismatch.
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "gridmutex/transport/campaign.hpp"
#include "gridmutex/transport/client.hpp"
#include "gridmutex/transport/node.hpp"
#include "lockd_flags.hpp"

namespace {

using namespace gmx::transport;
using gmx::LockId;
using gmx::NodeId;

int usage() {
  std::cerr << "usage: lockctl --nodes ip:port,... "
               "ping|start|acquire|release|stats|campaign|shutdown "
               "[flags]\n";
  return 2;
}

int cmd_ping(LockClient& client, double wait_sec) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(wait_sec);
  std::vector<bool> up(client.node_count(), false);
  std::size_t answered = 0;
  while (answered < client.node_count()) {
    for (NodeId n = 0; n < client.node_count(); ++n) {
      if (up[n]) continue;
      if (const auto r = client.ping(n, 500)) {
        up[n] = true;
        ++answered;
        std::cout << "node " << n << ": up"
                  << (r->started ? " (started)" : "") << "\n";
      }
    }
    if (answered == client.node_count()) break;
    if (std::chrono::steady_clock::now() > deadline) {
      for (NodeId n = 0; n < client.node_count(); ++n)
        if (!up[n]) std::cout << "node " << n << ": no answer\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return 0;
}

int cmd_start(LockClient& client) {
  for (NodeId n = 0; n < client.node_count(); ++n) {
    if (!client.send_peers(n, 5000)) {
      std::cerr << "node " << n << ": kPeers timed out\n";
      return 1;
    }
    if (!client.start(n, 5000)) {
      std::cerr << "node " << n << ": kStart timed out\n";
      return 1;
    }
  }
  std::cout << "started " << client.node_count() << " nodes\n";
  return 0;
}

int cmd_stats(LockClient& client) {
  NodeStats total;
  for (NodeId n = 0; n < client.node_count(); ++n) {
    const auto s = client.stats(n, 5000);
    if (!s) {
      std::cerr << "node " << n << ": kStats timed out\n";
      return 1;
    }
    std::cout << "node " << n << ": arrivals=" << s->arrivals
              << " grants=" << s->grants << " sheds=" << s->sheds
              << " misses=" << s->deadline_misses
              << " releases=" << s->releases
              << " fences=" << s->fences_issued << "\n";
    total += *s;
  }
  std::cout << "total:  arrivals=" << total.arrivals
            << " grants=" << total.grants << " sheds=" << total.sheds
            << " misses=" << total.deadline_misses
            << " releases=" << total.releases
            << " fences=" << total.fences_issued << "\n";
  return 0;
}

int cmd_shutdown(LockClient& client) {
  int rc = 0;
  for (NodeId n = 0; n < client.node_count(); ++n) {
    if (!client.shutdown(n, 5000)) {
      std::cerr << "node " << n << ": kShutdown timed out\n";
      rc = 1;
    }
  }
  return rc;
}

int cmd_campaign(const std::vector<PeerAddr>& nodes,
                 const CampaignConfig& cc) {
  // Closure is checked on stat *deltas*: the grid may already have served
  // ad-hoc acquire/release traffic before this campaign, and that history
  // must not be charged against the campaign's trace.
  LockClient client(nodes, cc.grid.client_protocol());
  NodeStats before;
  for (NodeId n = 0; n < client.node_count(); ++n) {
    const auto s = client.stats(n, 5000);
    if (!s) {
      std::cerr << "node " << n << ": kStats timed out\n";
      return 1;
    }
    before += *s;
  }

  const CampaignResult r = run_campaign(nodes, cc);
  std::cout << "campaign: arrivals=" << r.arrivals
            << " grants=" << r.grants << " sheds=" << r.sheds
            << " misses=" << r.deadline_misses << " wall=" << r.wall_sec
            << "s\n  obtain mean=" << r.obtain_mean_ms()
            << "ms p50=" << r.obtain_percentile_ms(0.5)
            << "ms p99=" << r.obtain_percentile_ms(0.99)
            << "ms  throughput=" << r.throughput_cs_per_s() << " cs/s\n"
            << "  fence_violations=" << r.fence_violations
            << " exclusion_violations=" << r.exclusion_violations << "\n";

  // Server-side closure: every arrival resolved exactly once, every grant
  // released, the client and the daemons agree on the counts.
  NodeStats after;
  for (NodeId n = 0; n < client.node_count(); ++n) {
    const auto s = client.stats(n, 5000);
    if (!s) {
      std::cerr << "node " << n << ": kStats timed out\n";
      return 1;
    }
    after += *s;
  }
  NodeStats total;
  total.arrivals = after.arrivals - before.arrivals;
  total.grants = after.grants - before.grants;
  total.sheds = after.sheds - before.sheds;
  total.deadline_misses = after.deadline_misses - before.deadline_misses;
  total.releases = after.releases - before.releases;
  total.fences_issued = after.fences_issued - before.fences_issued;
  bool ok = r.safe();
  const auto check = [&ok](bool cond, const char* what) {
    if (!cond) {
      std::cerr << "closure FAILED: " << what << "\n";
      ok = false;
    }
  };
  check(total.arrivals == total.grants + total.sheds + total.deadline_misses,
        "server arrivals != grants + sheds + deadline_misses");
  check(total.releases == total.grants, "server releases != grants");
  check(total.arrivals == r.arrivals, "server arrivals != trace arrivals");
  check(total.grants == r.grants, "server grants != client grants");
  check(total.sheds == r.sheds, "server sheds != client sheds");
  check(total.deadline_misses == r.deadline_misses,
        "server deadline misses != client deadline misses");
  std::cout << (ok ? "campaign OK: accounting closed, no safety violations"
                   : "campaign FAILED")
            << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string_view> args(argv + 1, argv + argc);
  std::string nodes_arg;
  std::string command;
  CampaignConfig cc;
  NodeId target = gmx::kInvalidNode;
  LockId lock = 0;
  std::uint64_t req = 0;
  std::uint64_t client_id = 0;
  double wait_sec = 15.0;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string_view a = args[i];
    if (!a.starts_with("--")) {
      if (!command.empty()) return usage();
      command = std::string(a);
      continue;
    }
    if (i + 1 >= args.size()) return usage();
    const std::string_view val = args[++i];
    if (a == "--nodes") nodes_arg = std::string(val);
    else if (a == "--target") target = lockd_flags::to_u32(val);
    else if (a == "--lock") lock = lockd_flags::to_u32(val);
    else if (a == "--req") req = lockd_flags::to_u64(val);
    else if (a == "--client") client_id = lockd_flags::to_u64(val);
    else if (a == "--wait-sec") wait_sec = lockd_flags::to_f64(val);
    else if (lockd_flags::parse_campaign_flag(cc, a, val)) continue;
    else return usage();
  }
  const auto nodes = lockd_flags::parse_nodes(nodes_arg);
  if (!nodes || nodes->empty() || command.empty()) return usage();

  if (command == "campaign") return cmd_campaign(*nodes, cc);

  LockClient client(*nodes, cc.grid.client_protocol());
  if (client_id != 0) client.set_client_id(client_id);
  if (command == "ping") return cmd_ping(client, wait_sec);
  if (command == "start") return cmd_start(client);
  if (command == "stats") return cmd_stats(client);
  if (command == "shutdown") return cmd_shutdown(client);
  if (command == "acquire") {
    if (target >= client.node_count()) return usage();
    const auto a = client.acquire(target, lock, cc.deadline_ms, 30000);
    switch (LockClient::Acquire::Status(a.status)) {
      case LockClient::Acquire::Status::kGranted:
        // client/req identify the grant for a later `lockctl release`.
        std::cout << "granted client=" << client.client_id()
                  << " req=" << a.req_id << " fence=" << a.fence
                  << " obtain=" << a.obtain_ms << "ms\n";
        return 0;
      case LockClient::Acquire::Status::kShed:
        std::cout << "shed req=" << a.req_id << "\n";
        return 1;
      case LockClient::Acquire::Status::kExpired:
        std::cout << "expired req=" << a.req_id << "\n";
        return 1;
      case LockClient::Acquire::Status::kTimeout:
        std::cout << "timeout req=" << a.req_id << "\n";
        return 1;
    }
    return 1;
  }
  if (command == "release") {
    if (target >= client.node_count()) return usage();
    const bool ok = client.release(target, lock, req, 30000);
    std::cout << (ok ? "released\n" : "timeout\n");
    return ok ? 0 : 1;
  }
  return usage();
}
