// lockd — one grid node of the real-socket lock service.
//
//   $ lockd --node 0 --clusters 2 --apps 4 --locks 4 --port 19000
//   lockd node=0 port=19000
//
// Binds a UDP socket (--port 0 = ephemeral; the actually bound port is
// printed on the "lockd node=N port=P" line, which launchers parse), then
// serves until a kShutdown arrives on the client protocol. Peer addresses
// come either from --peers (fixed-port deployments, e.g. the CI smoke
// grid) or later over the wire via kPeers (ephemeral-port deployments,
// e.g. xvalidate). See docs/TRANSPORT.md for the full quickstart.
#include <iostream>
#include <string>

#include "gridmutex/transport/node.hpp"
#include "gridmutex/transport/udp.hpp"
#include "lockd_flags.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: lockd --node N [grid flags] [--bind IP] [--port P]\n"
         "             [--peers ip:port,...]\n"
         "grid flags: --clusters N --apps N --locks K --intra ALGO\n"
         "            --inter ALGO --placement roundrobin|hash --seed S\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmx::transport;
  using gmx::NodeId;
  GridConfig grid;
  NodeId node = gmx::kInvalidNode;
  std::string bind_ip = "127.0.0.1";
  std::uint16_t port = 0;
  std::string peers;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string_view key = argv[i];
    const std::string_view val = argv[i + 1];
    if (lockd_flags::parse_grid_flag(grid, key, val)) continue;
    if (key == "--node") node = NodeId(lockd_flags::to_u32(val));
    else if (key == "--bind") bind_ip = std::string(val);
    else if (key == "--port") port = std::uint16_t(lockd_flags::to_u32(val));
    else if (key == "--peers") peers = std::string(val);
    else return usage();
  }
  if (node == gmx::kInvalidNode || node >= grid.node_count()) return usage();

  UdpTransport tp(node, bind_ip, port);
  LockdNode daemon(tp, grid);
  if (!peers.empty()) {
    const auto nodes = lockd_flags::parse_nodes(peers);
    if (!nodes || nodes->size() != grid.node_count()) {
      std::cerr << "lockd: --peers must list all " << grid.node_count()
                << " node addresses\n";
      return 2;
    }
    for (NodeId i = 0; i < nodes->size(); ++i)
      if (i != node) tp.add_peer(i, (*nodes)[i]);
  }

  // The launch handshake line; xvalidate parses the ephemeral port off it.
  std::cout << "lockd node=" << node << " port=" << tp.port() << std::endl;

  tp.start();
  daemon.wait_shutdown();
  tp.stop();
  return 0;
}
