// Scenario: a guided tour of the paper's machinery in one run.
//
// Narrates — with a live message trace and coordinator state hooks — the
// exact sequence §3 of the paper describes: an application requests, its
// coordinator walks OUT → WAIT_FOR_IN → IN, the inter token crosses the
// WAN, the intra token is handed over, and a remote request later pulls the
// token away through WAIT_FOR_OUT. Read the output next to paper Fig. 2.
//
//   $ ./paper_tour
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>

#include "gridmutex/core/composition.hpp"
#include "gridmutex/net/trace.hpp"

int main() {
  using namespace gmx;

  Simulator sim;
  const Topology topo = Composition::make_topology(3, 2);
  Network net(sim, topo,
              std::make_shared<MatrixLatencyModel>(MatrixLatencyModel::two_level(
                  3, SimDuration::ms_f(0.5), SimDuration::ms(10))),
              Rng(1));
  Composition comp(net, CompositionConfig{.intra_algorithm = "naimi",
                                          .inter_algorithm = "naimi"});

  // Message trace with protocol names.
  TraceSink sink(std::cout, comp.trace_labeler());
  sink.install(net);

  // Coordinator state narration.
  for (ClusterId c = 0; c < 3; ++c) {
    comp.coordinator(c).set_transition_hook(
        [c, &sim](const Coordinator&, Coordinator::State from,
                  Coordinator::State to) {
          std::printf("%8.3fms  coordinator[%u]  %s -> %s\n",
                      sim.now().as_ms(), c,
                      std::string(to_string(from)).c_str(),
                      std::string(to_string(to)).c_str());
        });
  }

  comp.start();
  sim.run();

  const NodeId app1 = topo.first_node_of(1) + 1;  // cluster 1
  const NodeId app2 = topo.first_node_of(2) + 1;  // cluster 2

  std::function<void()> step3;
  comp.app_mutex(app1).set_callbacks(MutexCallbacks{
      [&] {
        std::printf("%8.3fms  app1 (cluster 1) ENTERS the CS\n",
                    sim.now().as_ms());
        sim.schedule_after(SimDuration::ms(8), [&] {
          std::printf("%8.3fms  app1 releases\n", sim.now().as_ms());
          comp.app_mutex(app1).release_cs();
        });
      },
      {}});
  comp.app_mutex(app2).set_callbacks(MutexCallbacks{
      [&] {
        std::printf("%8.3fms  app2 (cluster 2) ENTERS the CS\n",
                    sim.now().as_ms());
        sim.schedule_after(SimDuration::ms(8), [&] {
          std::printf("%8.3fms  app2 releases\n", sim.now().as_ms());
          comp.app_mutex(app2).release_cs();
        });
      },
      {}});

  std::printf("\n--- step 1: app1 requests; coordinator 1 must fetch the "
              "inter token from cluster 0 ---\n");
  comp.app_mutex(app1).request_cs();
  sim.run();

  std::printf("\n--- step 2: app2 requests while cluster 1 is privileged; "
              "coordinator 1 reclaims its intra token, then releases the "
              "inter token ---\n");
  comp.app_mutex(app2).request_cs();
  sim.run();

  std::printf("\nfinal states: coordinator0=%s coordinator1=%s "
              "coordinator2=%s (exactly one privileged: the token rests "
              "with cluster 2)\n",
              std::string(to_string(comp.coordinator(0).state())).c_str(),
              std::string(to_string(comp.coordinator(1).state())).c_str(),
              std::string(to_string(comp.coordinator(2).state())).c_str());
  return 0;
}
