// Scenario: the same algorithm object code on a real-thread runtime.
//
// Everything else in this repository runs on the deterministic simulator;
// here the identical Naimi-Tréhel implementation runs with one OS thread
// per node and wall-clock emulated latencies (rt/), demonstrating the
// substrate independence that MutexContext buys: algorithms don't know
// whether time is simulated or real.
//
//   $ ./realtime_demo
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/rt/endpoint.hpp"

int main() {
  using namespace gmx;
  using namespace std::chrono_literals;

  constexpr int kNodes = 4;
  constexpr int kCycles = 5;

  // 2 clusters of 2; 1 ms LAN / 8 ms WAN of *wall-clock* emulated latency.
  rt::RtRuntime runtime(
      Topology::uniform(2, 2),
      std::make_shared<MatrixLatencyModel>(MatrixLatencyModel::two_level(
          2, SimDuration::ms(1), SimDuration::ms(8), 0.1)),
      /*seed=*/7);

  std::vector<NodeId> members = {0, 1, 2, 3};
  std::vector<std::unique_ptr<rt::RtMutexEndpoint>> eps;
  for (int r = 0; r < kNodes; ++r) {
    eps.push_back(std::make_unique<rt::RtMutexEndpoint>(
        runtime, 1, members, r, make_algorithm("naimi"), Rng(7)));
  }

  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  std::vector<std::atomic<int>> done(kNodes);
  const auto t0 = std::chrono::steady_clock::now();
  auto stamp_ms = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  for (int r = 0; r < kNodes; ++r) {
    rt::RtMutexEndpoint* ep = eps[std::size_t(r)].get();
    ep->set_callbacks(MutexCallbacks{
        [&, ep, r] {
          if (in_cs.fetch_add(1) != 0) violations.fetch_add(1);
          std::printf("[%4lld ms] node %d in CS (cycle %d)\n",
                      static_cast<long long>(stamp_ms()), r,
                      done[std::size_t(r)].load() + 1);
          std::this_thread::sleep_for(2ms);  // the critical section
          in_cs.fetch_sub(1);
          ep->release_cs();
          if (done[std::size_t(r)].fetch_add(1) + 1 < kCycles)
            ep->request_cs();
        },
        {},
    });
  }

  for (auto& ep : eps) ep->init(0);
  runtime.wait_quiescent(1000ms);
  for (auto& ep : eps) ep->request_cs();
  const bool ok = runtime.wait_quiescent(30000ms);

  int total = 0;
  for (auto& d : done) total += d.load();
  std::printf(
      "\n%s: %d critical sections across %d real threads in %lld ms, "
      "%llu emulated datagrams, %d mutual exclusion violations\n",
      ok && violations.load() == 0 ? "success" : "FAILURE", total, kNodes,
      static_cast<long long>(stamp_ms()),
      static_cast<unsigned long long>(runtime.messages_sent()),
      violations.load());
  runtime.shutdown();
  return ok && violations.load() == 0 && total == kNodes * kCycles ? 0 : 1;
}
