// Scenario: a grid-wide job scheduler protecting a shared job queue.
//
// The paper's motivating workload (§1): processes of a computational grid
// application need exclusive access to a shared resource. Here 9 clusters
// of worker daemons pop jobs from one logical queue; popping is a critical
// section guarded by a gridmutex composition. The workload is bursty —
// some clusters are busy (short think times), others mostly idle — and the
// example reports per-cluster fairness and the message bill, comparing two
// compositions side by side.
//
//   $ ./grid_scheduler
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "gridmutex/core/composition.hpp"
#include "gridmutex/net/network.hpp"
#include "gridmutex/sim/stats.hpp"
#include "gridmutex/workload/report.hpp"

namespace {

using namespace gmx;

struct RunStats {
  std::vector<int> jobs_by_cluster;
  DurationStats obtaining;
  std::uint64_t inter_msgs = 0;
  std::uint64_t total_msgs = 0;
  double makespan_ms = 0;
};

RunStats run(const std::string& intra, const std::string& inter) {
  constexpr int kJobs = 600;
  constexpr int kClusters = 9;
  constexpr int kWorkersPerCluster = 4;

  Simulator sim;
  const Topology topo =
      Composition::make_topology(kClusters, kWorkersPerCluster);
  Network net(sim, topo,
              std::make_shared<MatrixLatencyModel>(
                  MatrixLatencyModel::grid5000(0.05)),
              Rng(7));
  Composition comp(net, CompositionConfig{.intra_algorithm = intra,
                                          .inter_algorithm = inter,
                                          .seed = 7});
  comp.start();

  RunStats stats;
  stats.jobs_by_cluster.assign(kClusters, 0);
  int queue = kJobs;  // the shared job queue (guarded state)
  Rng rng(99);

  struct Worker {
    NodeId node;
    ClusterId cluster;
    SimDuration think;
    SimTime requested_at;
  };
  std::vector<Worker> workers;
  for (ClusterId c = 0; c < kClusters; ++c) {
    for (int w = 0; w < kWorkersPerCluster; ++w) {
      // Busy clusters (0-2) poll hard; the rest are mostly idle.
      const auto think = c < 3 ? SimDuration::ms(20 + 10 * w)
                               : SimDuration::ms(400 + 100 * w);
      workers.push_back(
          Worker{topo.first_node_of(c) + 1 + std::uint32_t(w), c, think, {}});
    }
  }

  std::function<void(std::size_t)> schedule_poll = [&](std::size_t i) {
    Worker& w = workers[i];
    sim.schedule_after(rng.exponential(w.think), [&, i] {
      workers[i].requested_at = sim.now();
      comp.app_mutex(workers[i].node).request_cs();
    });
  };

  for (std::size_t i = 0; i < workers.size(); ++i) {
    Worker& w = workers[i];
    comp.app_mutex(w.node).set_callbacks(MutexCallbacks{
        [&, i] {
          Worker& me = workers[i];
          stats.obtaining.add(sim.now() - me.requested_at);
          // --- critical section: pop one job ---------------------------
          const bool got = queue > 0;
          if (got) {
            --queue;
            ++stats.jobs_by_cluster[me.cluster];
          }
          // "process" inside the CS for 2ms (queue bookkeeping only; the
          // job itself would run outside).
          sim.schedule_after(SimDuration::ms(2), [&, i, got] {
            comp.app_mutex(workers[i].node).release_cs();
            if (got) schedule_poll(i);  // queue drained → stop polling
          });
        },
        {},
    });
    schedule_poll(i);
  }

  sim.run();
  stats.inter_msgs = net.counters().inter_cluster;
  stats.total_msgs = net.counters().sent;
  stats.makespan_ms = sim.now().as_ms();
  return stats;
}

}  // namespace

int main() {
  using namespace gmx;
  std::printf("grid_scheduler: 600 jobs, 9 clusters x 4 workers, "
              "3 hot clusters / 6 cold, Grid5000 latencies\n\n");

  Table t({"composition", "jobs hot clusters", "jobs cold clusters",
           "mean obtain (ms)", "sigma (ms)", "inter msgs", "total msgs",
           "makespan (s)"});
  for (const auto& [intra, inter] :
       {std::pair{"naimi", "martin"}, std::pair{"naimi", "suzuki"}}) {
    const RunStats s = run(intra, inter);
    int hot = 0, cold = 0;
    for (std::size_t c = 0; c < s.jobs_by_cluster.size(); ++c)
      (c < 3 ? hot : cold) += s.jobs_by_cluster[c];
    t.add_row({std::string(intra) + "-" + inter, std::to_string(hot),
               std::to_string(cold), Table::num(s.obtaining.mean_ms()),
               Table::num(s.obtaining.stddev_ms()),
               std::to_string(s.inter_msgs), std::to_string(s.total_msgs),
               Table::num(s.makespan_ms / 1000.0)});
  }
  t.print(std::cout);
  std::printf(
      "\nHot clusters grab most jobs (they poll 20x faster), but cold\n"
      "clusters are never starved: every pop request is eventually served\n"
      "(liveness of the composition). Martin-inter sends fewer messages\n"
      "under this saturated queue; Suzuki-inter reacts faster when the\n"
      "queue empties out. See bench/fig4*_ for the systematic comparison.\n");
  return 0;
}
