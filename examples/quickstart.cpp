// Quickstart: the smallest complete gridmutex program.
//
// Builds a 3-cluster grid (LAN 0.5 ms, WAN 10 ms), composes Naimi-Tréhel
// intra with Martin inter, and has two applications in different clusters
// alternate through a critical section. Shows the three things a user
// touches: the simulated Network, the Composition, and app_mutex().
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "gridmutex/core/composition.hpp"
#include "gridmutex/net/network.hpp"

int main() {
  using namespace gmx;

  // 1. A simulated grid: 3 clusters x 4 application nodes (+1 coordinator
  //    slot per cluster, added by make_topology).
  Simulator sim;
  const Topology topo = Composition::make_topology(/*clusters=*/3,
                                                   /*apps_per_cluster=*/4);
  Network net(sim, topo,
              std::make_shared<MatrixLatencyModel>(
                  MatrixLatencyModel::two_level(3, SimDuration::ms_f(0.5),
                                                SimDuration::ms(10))),
              Rng(42));

  // 2. A two-level composition: any registered algorithms plug in here.
  Composition comp(net, CompositionConfig{.intra_algorithm = "naimi",
                                          .inter_algorithm = "martin"});
  comp.start();

  // 3. Applications ask their local intra endpoint — the hierarchy is
  //    invisible to them (paper §3.1).
  const NodeId alice = topo.first_node_of(0) + 1;  // cluster 0
  const NodeId bob = topo.first_node_of(2) + 1;    // cluster 2

  int rounds = 3;
  std::function<void(NodeId, const char*)> enter;

  auto hold_and_release = [&](NodeId who, const char* name) {
    std::printf("[%8.3f ms] %s ENTERS the critical section\n",
                sim.now().as_ms(), name);
    sim.schedule_after(SimDuration::ms(5), [&, who, name] {
      std::printf("[%8.3f ms] %s leaves\n", sim.now().as_ms(), name);
      comp.app_mutex(who).release_cs();
      if (--rounds > 0) enter(who == alice ? bob : alice,
                              who == alice ? "bob  " : "alice");
    });
  };

  comp.app_mutex(alice).set_callbacks(
      MutexCallbacks{[&] { hold_and_release(alice, "alice"); }, {}});
  comp.app_mutex(bob).set_callbacks(
      MutexCallbacks{[&] { hold_and_release(bob, "bob  "); }, {}});
  enter = [&](NodeId who, const char* name) {
    std::printf("[%8.3f ms] %s requests\n", sim.now().as_ms(), name);
    comp.app_mutex(who).request_cs();
  };

  enter(alice, "alice");
  sim.run();

  const auto& c = net.counters();
  std::printf(
      "\ndone: %llu messages (%llu inter-cluster, %llu bytes total), "
      "%.3f ms simulated\n",
      static_cast<unsigned long long>(c.sent),
      static_cast<unsigned long long>(c.inter_cluster),
      static_cast<unsigned long long>(c.bytes_total), sim.now().as_ms());
  return 0;
}
