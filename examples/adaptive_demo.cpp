// Scenario: watching the adaptive controller follow a workload's phases.
//
// Implements the paper's proposed future work (§6): the inter algorithm is
// replaced at runtime according to the observed application behaviour. The
// workload moves through three phases — saturated, intermediate, sparse —
// and the demo prints a timeline of the controller's regime estimates and
// the algorithm swaps it performs.
//
//   $ ./adaptive_demo
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "gridmutex/core/adaptive.hpp"
#include "gridmutex/net/network.hpp"
#include "gridmutex/workload/app_process.hpp"

int main() {
  using namespace gmx;

  constexpr std::uint32_t kClusters = 6;
  constexpr std::uint32_t kApps = 3;

  Simulator sim;
  const Topology topo = Composition::make_topology(kClusters, kApps);
  Network net(sim, topo,
              std::make_shared<MatrixLatencyModel>(MatrixLatencyModel::two_level(
                  kClusters, SimDuration::ms_f(0.5), SimDuration::ms(10))),
              Rng(21));
  Composition comp(net, CompositionConfig{.intra_algorithm = "naimi",
                                          .inter_algorithm = "naimi",
                                          .seed = 21});
  AdaptiveConfig acfg;
  acfg.sample_every = SimDuration::ms(40);
  acfg.epoch = SimDuration::ms(400);
  AdaptiveComposition ada(net, comp, acfg);
  comp.start();
  ada.start();

  // Timeline printer: poll the controller until the workload finishes
  // (it must stop re-arming or the simulation would never drain).
  std::string last = ada.current_inter();
  bool watching = true;
  std::function<void()> watch = [&] {
    if (!watching) return;
    if (ada.current_inter() != last) {
      std::printf("[%7.2f s] controller switched %s -> %s "
                  "(demand fraction %.2f)\n",
                  sim.now().as_sec(), last.c_str(),
                  ada.current_inter().c_str(), ada.last_demand_fraction());
      last = ada.current_inter();
    }
    sim.schedule_after(SimDuration::ms(100), watch);
  };
  sim.schedule_after(SimDuration::ms(100), watch);

  WorkloadMetrics metrics;
  SafetyMonitor safety;
  Rng rng(5);
  std::vector<std::unique_ptr<AppProcess>> procs;

  // Three phases, chained via process completion.
  auto launch_phase = [&](const char* name, double rho, int cs,
                          std::size_t nodes,
                          const std::function<void()>& next) {
    std::printf("[%7.2f s] phase '%s' starts: %zu processes, rho=%.0f\n",
                sim.now().as_sec(), name, nodes, rho);
    WorkloadParams p;
    p.rho = rho;
    p.cs_count = cs;
    auto remaining = std::make_shared<std::size_t>(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      const NodeId v = comp.app_nodes()[i];
      procs.push_back(std::make_unique<AppProcess>(
          sim, comp.app_mutex(v), p, rng.fork(procs.size()), metrics,
          safety));
      procs.back()->on_done = [&, remaining, next] {
        if (--*remaining == 0 && next) next();
      };
      procs.back()->start();
    }
  };

  const std::size_t all = comp.app_nodes().size();
  launch_phase("saturated", 4, 60, all, [&] {
    launch_phase("intermediate", 2.0 * double(all), 30, all / 2, [&] {
      launch_phase("sparse", 20.0 * double(all), 10, 2, [&] {
        std::printf("[%7.2f s] workload complete\n", sim.now().as_sec());
        watching = false;
        ada.stop();
      });
    });
  });

  sim.run_until(sim.now() + SimDuration::sec(3600));
  ada.stop();
  sim.run();

  std::printf(
      "\nfinal inter algorithm: %s | switches: %d | CS served: %llu | "
      "mean obtaining %.2f ms | safety violations: %llu\n",
      ada.current_inter().c_str(), ada.switches_completed(),
      static_cast<unsigned long long>(metrics.completed_cs),
      metrics.obtaining.mean_ms(),
      static_cast<unsigned long long>(safety.violations()));
  return safety.violations() == 0 ? 0 : 1;
}
