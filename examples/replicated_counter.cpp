// Scenario: a replicated counter with read-modify-write consistency.
//
// Every node of a 4-cluster grid keeps a replica of one integer. An update
// is a classic lost-update hazard: read the latest value, increment, write
// back, propagate. The critical section makes read-modify-write atomic
// grid-wide; replicas synchronize lazily inside the CS ("fetch the current
// value from whoever wrote last"). At the end the counter must equal the
// exact number of increments — which the example verifies, along with a
// deliberately broken uncoordinated run that shows the lost updates the
// mutex prevents.
//
//   $ ./replicated_counter
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "gridmutex/core/composition.hpp"
#include "gridmutex/net/network.hpp"

namespace {

using namespace gmx;

constexpr int kClusters = 4;
constexpr int kAppsPerCluster = 3;
constexpr int kIncrementsPerNode = 25;

struct CounterRun {
  long long final_value = 0;
  long long expected = 0;
  std::uint64_t messages = 0;
  double makespan_ms = 0;
};

/// `coordinated` false simulates the naive approach: replicas increment
/// their local copy after a stale read window, losing concurrent updates.
CounterRun run(bool coordinated) {
  Simulator sim;
  const Topology topo = Composition::make_topology(kClusters,
                                                   kAppsPerCluster);
  Network net(sim, topo,
              std::make_shared<MatrixLatencyModel>(MatrixLatencyModel::two_level(
                  kClusters, SimDuration::ms_f(0.5), SimDuration::ms(12))),
              Rng(3));
  Composition comp(net, CompositionConfig{.intra_algorithm = "naimi",
                                          .inter_algorithm = "naimi",
                                          .seed = 3});
  comp.start();

  // The "replicated" value: in the coordinated run only the CS holder may
  // touch it, so a single authoritative variable models the synchronized
  // replicas. The uncoordinated run models stale reads explicitly.
  long long value = 0;
  Rng rng(11);
  int running = 0;

  struct Updater {
    NodeId node;
    int remaining = kIncrementsPerNode;
  };
  std::vector<Updater> updaters;
  for (ClusterId c = 0; c < kClusters; ++c)
    for (int i = 0; i < kAppsPerCluster; ++i)
      updaters.push_back({topo.first_node_of(c) + 1 + std::uint32_t(i)});

  std::function<void(std::size_t)> kick = [&](std::size_t i) {
    sim.schedule_after(rng.exponential(SimDuration::ms(30)), [&, i] {
      if (coordinated) {
        comp.app_mutex(updaters[i].node).request_cs();
      } else {
        // Uncoordinated read-modify-write: read now, write after a "compute
        // + propagation" delay — any concurrent writer in that window is
        // lost.
        const long long read = value;
        sim.schedule_after(SimDuration::ms(8), [&, i, read] {
          value = read + 1;
          if (--updaters[i].remaining > 0) kick(i);
        });
      }
    });
  };

  for (std::size_t i = 0; i < updaters.size(); ++i) {
    if (coordinated) {
      comp.app_mutex(updaters[i].node)
          .set_callbacks(MutexCallbacks{
              [&, i] {
                // Atomic read-modify-write under the grid-wide CS.
                const long long read = value;
                sim.schedule_after(SimDuration::ms(8), [&, i, read] {
                  value = read + 1;
                  comp.app_mutex(updaters[i].node).release_cs();
                  if (--updaters[i].remaining > 0) kick(i);
                });
              },
              {},
          });
    }
    ++running;
    kick(i);
  }

  sim.run();

  CounterRun out;
  out.final_value = value;
  out.expected = static_cast<long long>(updaters.size()) *
                 kIncrementsPerNode;
  out.messages = net.counters().sent;
  out.makespan_ms = sim.now().as_ms();
  return out;
}

}  // namespace

int main() {
  std::printf("replicated_counter: %d nodes x %d increments on a %d-cluster "
              "grid\n\n",
              kClusters * kAppsPerCluster, kIncrementsPerNode, kClusters);

  const CounterRun naive = run(/*coordinated=*/false);
  std::printf("uncoordinated : final=%lld expected=%lld -> %lld lost "
              "updates\n",
              naive.final_value, naive.expected,
              naive.expected - naive.final_value);

  const CounterRun safe = run(/*coordinated=*/true);
  std::printf("gridmutex     : final=%lld expected=%lld -> %s "
              "(%llu messages, %.1f s simulated)\n",
              safe.final_value, safe.expected,
              safe.final_value == safe.expected ? "exact" : "BROKEN",
              static_cast<unsigned long long>(safe.messages),
              safe.makespan_ms / 1000.0);
  return safe.final_value == safe.expected ? 0 : 1;
}
