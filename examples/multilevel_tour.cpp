// Scenario: a continental grid with three latency tiers.
//
// Demonstrates the multi-level extension (paper §6): 12 clusters grouped
// into 4 metro sites, LAN 0.5 ms / metro 4 ms / WAN 60 ms. Compares the
// token's travel bill when demand is site-local versus continent-wide, and
// prints the coordinator tree.
//
//   $ ./multilevel_tour
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "gridmutex/core/multilevel.hpp"
#include "gridmutex/net/network.hpp"
#include "gridmutex/workload/app_process.hpp"

namespace {

using namespace gmx;

const HierarchySpec kSpec{.arity = {4, 3, 4},
                          .algorithms = {"naimi", "naimi", "naimi"}};
const std::vector<SimDuration> kDelays = {
    SimDuration::ms_f(0.5), SimDuration::ms(4), SimDuration::ms(60)};

struct RunResult {
  double obtaining_ms;
  std::uint64_t inter_msgs;
  double makespan_s;
};

RunResult run(bool site_local) {
  Simulator sim;
  const Topology topo = MultiLevelComposition::make_topology(kSpec);
  Network net(sim, topo, MultiLevelComposition::make_latency(kSpec, kDelays),
              Rng(13));
  MultiLevelComposition ml(net, kSpec, 1, 13);
  ml.start();

  WorkloadMetrics metrics;
  SafetyMonitor safety;
  Rng rng(17);
  WorkloadParams p;
  p.rho = 10;
  p.cs_count = 40;

  std::vector<std::unique_ptr<AppProcess>> procs;
  std::vector<NodeId> chosen;
  if (site_local) {
    // All demand inside site 0 (clusters 0-2).
    for (NodeId v : ml.app_nodes())
      if (topo.cluster_of(v) < 3) chosen.push_back(v);
  } else {
    // One app per cluster, spread over every site.
    for (ClusterId c = 0; c < topo.cluster_count(); ++c)
      chosen.push_back(topo.first_node_of(c) + 1);
  }
  for (NodeId v : chosen) {
    procs.push_back(std::make_unique<AppProcess>(
        sim, ml.app_mutex(v), p, rng.fork(v), metrics, safety));
    procs.back()->start();
  }
  sim.run();
  return RunResult{metrics.obtaining.mean_ms(),
                   net.counters().inter_cluster, sim.now().as_sec()};
}

}  // namespace

int main() {
  using namespace gmx;
  const Topology topo = MultiLevelComposition::make_topology(kSpec);
  std::printf("multilevel_tour: %u apps in %u clusters, 4 sites, 3 latency "
              "tiers (0.5/4/60 ms)\n\n",
              kSpec.application_count(), topo.cluster_count());
  std::printf("hierarchy: %u cluster coordinators -> %u site coordinators "
              "-> 1 root instance\n\n",
              kSpec.groups_at(0), kSpec.groups_at(1));

  const RunResult local = run(/*site_local=*/true);
  const RunResult spread = run(/*site_local=*/false);

  std::printf("%-22s %18s %14s %12s\n", "demand pattern", "mean obtain (ms)",
              "inter msgs", "makespan (s)");
  std::printf("%-22s %18.2f %14llu %12.1f\n", "site-local (site 0)",
              local.obtaining_ms,
              static_cast<unsigned long long>(local.inter_msgs),
              local.makespan_s);
  std::printf("%-22s %18.2f %14llu %12.1f\n", "continent-wide",
              spread.obtaining_ms,
              static_cast<unsigned long long>(spread.inter_msgs),
              spread.makespan_s);

  std::printf(
      "\nWith site-local demand the token never crosses a 60ms WAN link\n"
      "after the first acquisition: the site instance keeps it close, so\n"
      "the obtaining time reflects metro hops only. Continent-wide demand\n"
      "pays the WAN on every site handover — exactly the hierarchy-of-\n"
      "latencies effect the composition exists to exploit.\n");
  return 0;
}
